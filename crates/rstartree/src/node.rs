//! Tree nodes and their page serialisation.

use crate::rect::Rect;
use pagestore::{Page, PAGE_SIZE};

/// Identifier of a node in a [`crate::NodeStore`]. For the paged store this
/// is the page number; for the memory store it is a slot index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Sentinel meaning "no node".
    pub const INVALID: NodeId = NodeId(u32::MAX);
}

/// One slot of a node: a rectangle plus either a child node id (branch
/// levels) or an opaque data payload (leaf level).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// The entry's bounding rectangle (a point for leaf data in this
    /// library's typical use, but general rectangles are supported).
    pub rect: Rect<D>,
    /// Child [`NodeId`] (encoded as u64) on branch levels, data payload on
    /// the leaf level.
    pub payload: u64,
}

impl<const D: usize> Entry<D> {
    /// Branch entry pointing at `child`.
    pub fn branch(rect: Rect<D>, child: NodeId) -> Self {
        Self {
            rect,
            payload: u64::from(child.0),
        }
    }

    /// Leaf entry carrying `data`.
    pub fn leaf(rect: Rect<D>, data: u64) -> Self {
        Self {
            rect,
            payload: data,
        }
    }

    /// The child id of a branch entry.
    pub fn child(&self) -> NodeId {
        NodeId(u32::try_from(self.payload).expect("branch payload is a NodeId"))
    }
}

/// A tree node: `level == 0` is a leaf.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<const D: usize> {
    /// Distance from the leaf level (leaves are level 0).
    pub level: u32,
    /// The node's slots.
    pub entries: Vec<Entry<D>>,
}

impl<const D: usize> Node<D> {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The MBR covering all entries.
    pub fn mbr(&self) -> Rect<D> {
        Rect::union_all(self.entries.iter().map(|e| &e.rect))
    }

    // --- page serialisation -------------------------------------------
    //
    // Layout: [level: u32][count: u32][entries...]
    // entry:  D lo f64s, D hi f64s, payload u64  → (2·D + 1) · 8 bytes

    /// Bytes one serialised entry occupies.
    pub const ENTRY_BYTES: usize = (2 * D + 1) * 8;
    const HEADER_BYTES: usize = 8;

    /// The maximum number of entries a node of dimension `D` can hold on
    /// one page — the tree's fanout `M`.
    pub const fn page_capacity() -> usize {
        (PAGE_SIZE - Self::HEADER_BYTES) / Self::ENTRY_BYTES
    }

    /// Serialises into a page.
    ///
    /// # Panics
    ///
    /// Panics when the node exceeds [`Self::page_capacity`].
    pub fn write_page(&self, page: &mut Page) {
        assert!(
            self.entries.len() <= Self::page_capacity(),
            "node with {} entries exceeds page capacity {}",
            self.entries.len(),
            Self::page_capacity()
        );
        page.put_u32(0, self.level);
        page.put_u32(4, u32::try_from(self.entries.len()).expect("count fits"));
        let mut off = Self::HEADER_BYTES;
        for e in &self.entries {
            for d in 0..D {
                page.put_f64(off, e.rect.lo[d]);
                off += 8;
            }
            for d in 0..D {
                page.put_f64(off, e.rect.hi[d]);
                off += 8;
            }
            page.put_u64(off, e.payload);
            off += 8;
        }
    }

    /// Deserialises from a page.
    pub fn read_page(page: &Page) -> Self {
        let level = page.get_u32(0);
        let count = page.get_u32(4) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = Self::HEADER_BYTES;
        for _ in 0..count {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for slot in lo.iter_mut() {
                *slot = page.get_f64(off);
                off += 8;
            }
            for slot in hi.iter_mut() {
                *slot = page.get_f64(off);
                off += 8;
            }
            let payload = page.get_u64(off);
            off += 8;
            entries.push(Entry {
                rect: Rect { lo, hi },
                payload,
            });
        }
        Self { level, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_sane_for_paper_dimension() {
        // D = 6 → entry = 104 bytes → 78 entries per 8 KiB page.
        assert_eq!(Node::<6>::page_capacity(), 78);
        assert!(Node::<2>::page_capacity() > 200);
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut node = Node::<3>::new(2);
        for i in 0..10u64 {
            let f = i as f64;
            node.entries.push(Entry {
                rect: Rect::new([f, -f, 0.5 * f], [f + 1.0, -f + 2.0, f]),
                payload: i * 17,
            });
        }
        let mut page = Page::zeroed();
        node.write_page(&mut page);
        let back = Node::<3>::read_page(&page);
        assert_eq!(node, back);
        assert!(!back.is_leaf());
    }

    #[test]
    fn full_node_roundtrip() {
        let cap = Node::<6>::page_capacity();
        let mut node = Node::<6>::new(0);
        for i in 0..cap as u64 {
            let p = [i as f64; 6];
            node.entries.push(Entry::leaf(Rect::point(p), i));
        }
        let mut page = Page::zeroed();
        node.write_page(&mut page);
        assert_eq!(Node::<6>::read_page(&page), node);
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn over_capacity_panics() {
        let cap = Node::<6>::page_capacity();
        let mut node = Node::<6>::new(0);
        for i in 0..=cap as u64 {
            node.entries.push(Entry::leaf(Rect::point([0.0; 6]), i));
        }
        node.write_page(&mut Page::zeroed());
    }

    #[test]
    fn entry_constructors() {
        let r = Rect::point([1.0, 2.0]);
        let b = Entry::branch(r, NodeId(5));
        assert_eq!(b.child(), NodeId(5));
        let l = Entry::<2>::leaf(r, 12345);
        assert_eq!(l.payload, 12345);
    }

    #[test]
    fn mbr_covers_entries() {
        let mut node = Node::<2>::new(0);
        node.entries.push(Entry::leaf(Rect::point([0.0, 5.0]), 0));
        node.entries.push(Entry::leaf(Rect::point([3.0, -1.0]), 1));
        assert_eq!(node.mbr(), Rect::new([0.0, -1.0], [3.0, 5.0]));
    }
}
