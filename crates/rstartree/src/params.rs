//! Tree tuning parameters.

use crate::node::Node;

/// R*-tree parameters: fanout bounds and the forced-reinsert fraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`); the R*-tree paper recommends 40 % of
    /// `M`.
    pub min_entries: usize,
    /// Entries removed on forced reinsertion (`p`); recommended 30 % of `M`.
    pub reinsert_count: usize,
}

impl Params {
    /// Parameters derived from the page capacity for dimension `D`, using
    /// the R*-tree paper's recommended ratios (m = 40 % · M, p = 30 % · M).
    pub fn for_dimension<const D: usize>() -> Self {
        Self::with_max(Node::<D>::page_capacity())
    }

    /// Parameters for an explicit fanout `max` (recommended ratios).
    ///
    /// # Panics
    ///
    /// Panics when `max < 4` (the algorithms need room to split).
    pub fn with_max(max: usize) -> Self {
        assert!(max >= 4, "fanout must be at least 4, got {max}");
        let min = (max * 2 / 5).max(1);
        let reinsert = (max * 3 / 10).max(1);
        Self {
            max_entries: max,
            min_entries: min,
            reinsert_count: reinsert,
        }
    }

    /// Validates internal consistency; called by the tree constructor.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be ≥ 4");
        assert!(
            self.min_entries >= 1 && self.min_entries <= self.max_entries / 2,
            "min_entries must be in [1, M/2], got m={} M={}",
            self.min_entries,
            self.max_entries
        );
        assert!(
            self.reinsert_count >= 1 && self.reinsert_count < self.max_entries,
            "reinsert_count must be in [1, M), got {}",
            self.reinsert_count
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimension_defaults() {
        let p = Params::for_dimension::<6>();
        assert_eq!(p.max_entries, 78);
        assert_eq!(p.min_entries, 31); // 40 % of 78
        assert_eq!(p.reinsert_count, 23); // 30 % of 78
        p.validate();
    }

    #[test]
    fn small_fanout_is_valid() {
        let p = Params::with_max(4);
        assert_eq!(p.min_entries, 1);
        assert_eq!(p.reinsert_count, 1);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_fanout_rejected() {
        Params::with_max(3);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn inconsistent_min_rejected() {
        let p = Params {
            max_entries: 8,
            min_entries: 5,
            reinsert_count: 2,
        };
        p.validate();
    }
}
