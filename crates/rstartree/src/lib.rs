#![warn(missing_docs)]
//! # rstartree — the R*-tree of Beckmann, Kriegel, Schneider & Seeger
//!
//! The ICDE '99 paper runs its experiments "on top of Norbert Beckmann's
//! Version 2 implementation of the R*-tree" (§5). This crate is a from-
//! scratch Rust implementation of the published R*-tree algorithms
//! (SIGMOD '90), instrumented the way the paper's evaluation needs:
//!
//! * **ChooseSubtree** — minimum *overlap* enlargement when the children are
//!   leaves, minimum *area* enlargement above;
//! * **Split** — choose the split axis by minimum margin sum, then the
//!   distribution by minimum overlap (ties: minimum area);
//! * **Forced reinsertion** — on the first overflow of each level per
//!   insertion, the 30 % of entries farthest from the node centre are
//!   reinserted instead of splitting;
//! * **Deletion** with tree condensation (underfull nodes dissolved and
//!   their entries reinserted at their original level);
//! * **STR bulk loading** for building large indexes quickly;
//! * **Query machinery** — predicate-driven descent ([`RStarTree::search`],
//!   the hook the MT-index algorithm plugs its transformed-rectangle test
//!   into), plain range queries, best-first nearest neighbour with
//!   caller-supplied lower bounds (MINDIST-style, after Roussopoulos et
//!   al.), and synchronized-descent spatial joins including duplicate-free
//!   self joins;
//! * **Pluggable node stores** — [`MemStore`] for pure in-memory use and
//!   [`PagedStore`] which serialises every node onto one
//!   [`pagestore::Disk`] page; both count node accesses, which is the
//!   "number of disk accesses" of the paper's Figures 8–9.
//!
//! Dimensions are a compile-time constant (`const D: usize`); the paper's
//! feature space is `D = 6` (mean, std, and two DFT coefficients in polar
//! form).
//!
//! ```
//! use rstartree::{MemStore, Params, RStarTree, Rect};
//! let mut tree: RStarTree<2, MemStore<2>> =
//!     RStarTree::with_params(MemStore::new(), Params::with_max(8));
//! for i in 0..100u64 {
//!     tree.insert(Rect::point([i as f64, (i * 7 % 13) as f64]), i).unwrap();
//! }
//! let (hits, stats) = tree.range(&Rect::new([10.0, 0.0], [20.0, 20.0])).unwrap();
//! assert_eq!(hits.len(), 11);
//! assert!(stats.nodes_accessed < 40, "the tree prunes");
//! tree.validate().unwrap();
//! ```
//!
//! Tree accessors return `Result<_, pagestore::PageError>`: over a plain
//! in-memory store they never fail, but a [`PagedStore`] over a
//! [`pagestore::FaultyDisk`] surfaces injected device errors instead of
//! panicking — the fault-injection test harness relies on this.

mod bulk;
mod node;
mod params;
mod rect;
mod split;
mod store;
mod tree;

pub use bulk::bulk_load_str;
pub use node::{Node, NodeId};
pub use params::Params;
pub use rect::Rect;
pub use store::{MemStore, NodeStore, PagedStore, StoreStats};
pub use tree::{JoinSide, LevelSummary, Neighbor, RStarTree, SearchStats};

#[cfg(test)]
mod proptests;
