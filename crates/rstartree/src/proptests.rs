//! Deterministic and property-style tests of the whole tree: structural
//! invariants under seeded random insert/delete mixes, recall equivalence
//! against linear scans, nearest-neighbour exactness and join completeness.

use crate::*;

type Tree2 = RStarTree<2, MemStore<2>>;

/// A tiny SplitMix64 generator keeping this crate dependency-free; the
/// randomized tests below run a fixed number of seeded cases instead of
/// using an external property-testing framework.
struct MiniRng(u64);

impl MiniRng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }
}

fn mem_tree(max: usize) -> Tree2 {
    RStarTree::with_params(MemStore::new(), Params::with_max(max))
}

fn random_points(n: usize, seed: u64) -> Vec<(Rect<2>, u64)> {
    let mut rng = MiniRng::new(seed);
    (0..n)
        .map(|i| {
            let p = [
                rng.range_f64(-1000.0, 1000.0),
                rng.range_f64(-1000.0, 1000.0),
            ];
            (Rect::point(p), i as u64)
        })
        .collect()
}

#[test]
fn empty_tree_sane() {
    let tree = mem_tree(8);
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    let (hits, stats) = tree.range(&Rect::new([-1e9, -1e9], [1e9, 1e9])).unwrap();
    assert!(hits.is_empty());
    assert_eq!(stats.nodes_accessed, 1);
    tree.validate().unwrap();
}

#[test]
fn insert_then_find_everything() {
    let mut tree = mem_tree(8);
    let items = random_points(500, 1);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    assert_eq!(tree.len(), 500);
    tree.validate().unwrap();
    let (hits, _) = tree.range(&Rect::new([-1e9, -1e9], [1e9, 1e9])).unwrap();
    assert_eq!(hits.len(), 500);
}

#[test]
fn range_query_matches_linear_scan() {
    let items = random_points(800, 2);
    let mut tree = mem_tree(16);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    for (qi, query) in [
        Rect::new([-100.0, -100.0], [100.0, 100.0]),
        Rect::new([500.0, -1000.0], [1000.0, 0.0]),
        Rect::point([12345.0, 0.0]),
    ]
    .iter()
    .enumerate()
    {
        let (mut got, _) = tree.range(query).unwrap();
        got.sort_by_key(|(_, d)| *d);
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(r, _)| r.intersects(query))
            .map(|(_, d)| *d)
            .collect();
        want.sort_unstable();
        assert_eq!(
            got.iter().map(|(_, d)| *d).collect::<Vec<_>>(),
            want,
            "query {qi}"
        );
    }
}

#[test]
fn delete_removes_and_preserves_invariants() {
    let items = random_points(300, 3);
    let mut tree = mem_tree(8);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    // Delete every third item.
    for (r, d) in items.iter().step_by(3) {
        assert!(tree.delete(r, *d).unwrap(), "must find {d}");
    }
    tree.validate().unwrap();
    let survivors: Vec<u64> = items
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, (_, d))| *d)
        .collect();
    let (mut got, _) = tree.range(&Rect::new([-1e9, -1e9], [1e9, 1e9])).unwrap();
    got.sort_by_key(|(_, d)| *d);
    assert_eq!(got.iter().map(|(_, d)| *d).collect::<Vec<_>>(), survivors);
}

#[test]
fn delete_everything_leaves_empty_tree() {
    let items = random_points(120, 4);
    let mut tree = mem_tree(6);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    for (r, d) in &items {
        assert!(tree.delete(r, *d).unwrap());
    }
    assert!(tree.is_empty());
    tree.validate().unwrap();
    // The tree is reusable afterwards.
    tree.insert(Rect::point([1.0, 1.0]), 77).unwrap();
    assert_eq!(tree.len(), 1);
    tree.validate().unwrap();
}

#[test]
fn delete_missing_returns_false() {
    let mut tree = mem_tree(8);
    tree.insert(Rect::point([1.0, 2.0]), 1).unwrap();
    assert!(
        !tree.delete(&Rect::point([1.0, 2.0]), 2).unwrap(),
        "wrong payload"
    );
    assert!(
        !tree.delete(&Rect::point([9.0, 9.0]), 1).unwrap(),
        "wrong rect"
    );
    assert_eq!(tree.len(), 1);
}

#[test]
fn duplicate_points_supported() {
    let mut tree = mem_tree(8);
    for d in 0..50 {
        tree.insert(Rect::point([3.5, 2.25]), d).unwrap();
    }
    tree.validate().unwrap();
    let (hits, _) = tree.range(&Rect::point([3.5, 2.25])).unwrap();
    assert_eq!(hits.len(), 50);
    assert!(tree.delete(&Rect::point([3.5, 2.25]), 25).unwrap());
    let (hits, _) = tree.range(&Rect::point([3.5, 2.25])).unwrap();
    assert_eq!(hits.len(), 49);
}

#[test]
fn nearest_matches_brute_force() {
    let items = random_points(400, 5);
    let mut tree = mem_tree(16);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let queries = [[0.0, 0.0], [999.0, -999.0], [-512.0, 400.0]];
    for q in queries {
        let (got, _) = tree
            .nearest_by(
                5,
                |rect| rect.min_dist_sq(&q),
                |rect, _| Some(rect.min_dist_sq(&q)),
            )
            .unwrap();
        assert_eq!(got.len(), 5);
        let mut brute: Vec<(f64, u64)> =
            items.iter().map(|(r, d)| (r.min_dist_sq(&q), *d)).collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (i, n) in got.iter().enumerate() {
            assert!(
                (n.dist - brute[i].0).abs() < 1e-9,
                "rank {i}: {} vs {}",
                n.dist,
                brute[i].0
            );
        }
    }
}

#[test]
fn nearest_leaf_score_filter_applies() {
    let mut tree = mem_tree(8);
    for (r, d) in random_points(100, 6) {
        tree.insert(r, d).unwrap();
    }
    let q = [0.0, 0.0];
    // Disqualify even payloads.
    let (got, _) = tree
        .nearest_by(
            10,
            |rect| rect.min_dist_sq(&q),
            |rect, d| (d % 2 == 1).then(|| rect.min_dist_sq(&q)),
        )
        .unwrap();
    assert_eq!(got.len(), 10);
    assert!(got.iter().all(|n| n.data % 2 == 1));
}

#[test]
fn nearest_dfs_matches_best_first() {
    let items = random_points(600, 31);
    let mut tree = mem_tree(16);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    for q in [[0.0, 0.0], [750.0, -320.0], [-999.0, 999.0]] {
        for k in [1usize, 3, 10] {
            let (bf, _) = tree
                .nearest_by(k, |r| r.min_dist_sq(&q), |r, _| Some(r.min_dist_sq(&q)))
                .unwrap();
            for use_mm in [false, true] {
                let (dfs, _) = tree.nearest_dfs(k, &q, use_mm).unwrap();
                assert_eq!(bf.len(), dfs.len(), "k={k}");
                for (a, b) in bf.iter().zip(&dfs) {
                    assert!(
                        (a.dist - b.dist).abs() < 1e-9,
                        "k={k} mm={use_mm}: {} vs {}",
                        a.dist,
                        b.dist
                    );
                }
            }
        }
    }
}

#[test]
fn nearest_dfs_prunes() {
    let items = random_points(3000, 33);
    let mut tree = mem_tree(16);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let total = tree.validate().unwrap() as u64;
    let (_, stats) = tree.nearest_dfs(1, &[10.0, 10.0], true).unwrap();
    assert!(
        stats.nodes_accessed < total / 3,
        "DFS NN should prune most of {total} nodes, visited {}",
        stats.nodes_accessed
    );
}

#[test]
fn nearest_by_refine_matches_plain_nearest() {
    let items = random_points(500, 21);
    let mut tree = mem_tree(12);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let q = [37.0, -12.0];
    // Exact distance is the point distance; the "cheap" leaf bound is a
    // deliberately slack half of it, forcing deferred refinement to do the
    // ordering work.
    let (plain, _) = tree
        .nearest_by(7, |r| r.min_dist_sq(&q), |r, _| Some(r.min_dist_sq(&q)))
        .unwrap();
    let mut refined_count = 0;
    let (refined, stats) = tree
        .nearest_by_refine(
            7,
            |r| 0.5 * r.min_dist_sq(&q),
            |r, _| 0.5 * r.min_dist_sq(&q),
            |r, _| {
                refined_count += 1;
                Some(r.min_dist_sq(&q))
            },
        )
        .unwrap();
    assert_eq!(plain.len(), refined.len());
    for (a, b) in plain.iter().zip(&refined) {
        assert!((a.dist - b.dist).abs() < 1e-12, "{} vs {}", a.dist, b.dist);
    }
    assert_eq!(stats.candidates, refined_count);
    assert!(
        refined_count < 500,
        "refinement should not touch every point: {refined_count}"
    );
}

#[test]
fn nearest_by_refine_filter_via_none() {
    let items = random_points(200, 22);
    let mut tree = mem_tree(8);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let q = [0.0, 0.0];
    let (got, _) = tree
        .nearest_by_refine(
            5,
            |r| r.min_dist_sq(&q),
            |r, _| r.min_dist_sq(&q),
            |r, d| (d % 3 == 0).then(|| r.min_dist_sq(&q)),
        )
        .unwrap();
    assert_eq!(got.len(), 5);
    assert!(got.iter().all(|n| n.data % 3 == 0));
    // Matches brute force over the filtered subset.
    let mut brute: Vec<f64> = items
        .iter()
        .filter(|(_, d)| d % 3 == 0)
        .map(|(r, _)| r.min_dist_sq(&q))
        .collect();
    brute.sort_by(f64::total_cmp);
    for (i, n) in got.iter().enumerate() {
        assert!((n.dist - brute[i]).abs() < 1e-12);
    }
}

#[test]
fn self_join_reports_each_pair_once() {
    let items = random_points(150, 7);
    let mut tree = mem_tree(8);
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let thresh = 150.0;
    let pred = |a: &Rect<2>, b: &Rect<2>| {
        // Expand-by-threshold intersection — monotone under MBR union.
        (0..2).all(|i| a.lo[i] - thresh <= b.hi[i] && b.lo[i] - thresh <= a.hi[i])
    };
    let mut pairs = Vec::new();
    tree.self_join(pred, |_, d1, _, d2| {
        pairs.push((d1.min(d2), d1.max(d2)));
    })
    .unwrap();
    let mut sorted = pairs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        pairs.len(),
        "self-join produced duplicate pairs"
    );

    // Completeness + soundness against brute force.
    let mut brute = Vec::new();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            if pred(&items[i].0, &items[j].0) {
                brute.push((items[i].1.min(items[j].1), items[i].1.max(items[j].1)));
            }
        }
    }
    brute.sort_unstable();
    pairs.sort_unstable();
    assert_eq!(pairs, brute);
}

#[test]
fn join_two_trees_matches_nested_loop() {
    let a_items = random_points(120, 8);
    let b_items: Vec<(Rect<2>, u64)> = random_points(80, 9)
        .into_iter()
        .map(|(r, d)| (r, d + 1000))
        .collect();
    let mut a = mem_tree(8);
    let mut b = mem_tree(12);
    for (r, d) in &a_items {
        a.insert(*r, *d).unwrap();
    }
    for (r, d) in &b_items {
        b.insert(*r, *d).unwrap();
    }
    let thresh = 100.0;
    let pred = |x: &Rect<2>, y: &Rect<2>| {
        (0..2).all(|i| x.lo[i] - thresh <= y.hi[i] && y.lo[i] - thresh <= x.hi[i])
    };
    let mut got = Vec::new();
    a.join_with(&b, pred, |_, d1, _, d2| got.push((d1, d2)))
        .unwrap();
    got.sort_unstable();
    let mut want = Vec::new();
    for (ra, da) in &a_items {
        for (rb, db) in &b_items {
            if pred(ra, rb) {
                want.push((*da, *db));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn paged_store_tree_equals_mem_tree() {
    use pagestore::Disk;
    use std::sync::Arc;
    let items = random_points(300, 10);
    let mut mem = mem_tree(16);
    let disk = Arc::new(Disk::new());
    let mut paged: RStarTree<2, PagedStore<2>> =
        RStarTree::with_params(PagedStore::new(disk), Params::with_max(16));
    for (r, d) in &items {
        mem.insert(*r, *d).unwrap();
        paged.insert(*r, *d).unwrap();
    }
    paged.validate().unwrap();
    let query = Rect::new([-300.0, -300.0], [300.0, 300.0]);
    let (mut g1, _) = mem.range(&query).unwrap();
    let (mut g2, _) = paged.range(&query).unwrap();
    g1.sort_by_key(|(_, d)| *d);
    g2.sort_by_key(|(_, d)| *d);
    assert_eq!(g1, g2);
}

#[test]
fn paged_tree_survives_disk_image_roundtrip() {
    use pagestore::Disk;
    use std::sync::Arc;
    let items = random_points(400, 55);
    let disk = Arc::new(Disk::new());
    let mut tree: RStarTree<2, PagedStore<2>> =
        RStarTree::with_params(PagedStore::new(Arc::clone(&disk)), Params::with_max(16));
    for (r, d) in &items {
        tree.insert(*r, *d).unwrap();
    }
    let (root, level, len) = (tree.root_id(), tree.root_level(), tree.len());
    let params = *tree.params();

    let path = std::env::temp_dir().join("rstartree_image_test.pg");
    disk.save_to(&path).unwrap();
    let reopened_disk = Arc::new(Disk::load_from(&path).unwrap());
    let reopened: RStarTree<2, PagedStore<2>> =
        RStarTree::open(PagedStore::new(reopened_disk), root, level, len, params);
    reopened.validate().unwrap();

    let q = Rect::new([-400.0, -400.0], [400.0, 400.0]);
    let (mut a, _) = tree.range(&q).unwrap();
    let (mut b, _) = reopened.range(&q).unwrap();
    a.sort_by_key(|(_, d)| *d);
    b.sort_by_key(|(_, d)| *d);
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn node_access_counting_via_store() {
    let mut tree = mem_tree(8);
    for (r, d) in random_points(200, 11) {
        tree.insert(r, d).unwrap();
    }
    tree.store().reset_stats();
    let (_, stats) = tree
        .range(&Rect::new([-50.0, -50.0], [50.0, 50.0]))
        .unwrap();
    assert_eq!(tree.store().stats().reads, stats.nodes_accessed);
}

#[test]
fn search_prunes_subtrees() {
    let mut tree = mem_tree(8);
    for (r, d) in random_points(2000, 12) {
        tree.insert(r, d).unwrap();
    }
    let total_nodes = tree.validate().unwrap() as u64;
    let (_, stats) = tree.range(&Rect::new([0.0, 0.0], [10.0, 10.0])).unwrap();
    assert!(
        stats.nodes_accessed < total_nodes / 4,
        "tiny query should prune most of {total_nodes} nodes, accessed {}",
        stats.nodes_accessed
    );
}

#[test]
fn forced_reinsert_occurs_with_default_params() {
    // White-box-ish: a clustered insertion order triggers overflow and the
    // first overflow at a level reinserts instead of splitting; observable
    // as fewer nodes than a pure-split policy would produce. Just assert
    // structure is valid and utilisation is decent.
    let mut tree = mem_tree(10);
    for i in 0..1000u64 {
        let x = (i % 100) as f64;
        let y = (i / 100) as f64;
        tree.insert(Rect::point([x, y]), i).unwrap();
    }
    let nodes = tree.validate().unwrap();
    // 1000 entries, fanout 10 → ≥ 100 leaves; decent packing keeps total
    // well under the no-reinsert worst case.
    assert!(nodes < 260, "too many nodes: {nodes}");
}

#[test]
fn invariants_under_random_insert_delete() {
    let mut rng = MiniRng::new(0xA11C_E501);
    for case in 0..24 {
        let max = 4 + rng.below(16) as usize;
        let n_ops = 1 + rng.below(299) as usize;
        let mut tree = mem_tree(max);
        let mut shadow: Vec<(Rect<2>, u64)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..n_ops {
            let op = rng.below(4) as u8;
            let x = rng.below(200) as i32 - 100;
            let y = rng.below(200) as i32 - 100;
            let p = Rect::point([x as f64, y as f64]);
            if op < 3 || shadow.is_empty() {
                tree.insert(p, next_id).unwrap();
                shadow.push((p, next_id));
                next_id += 1;
            } else {
                let victim = shadow.swap_remove((x.unsigned_abs() as usize) % shadow.len());
                assert!(tree.delete(&victim.0, victim.1).unwrap(), "case {case}");
            }
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), shadow.len(), "case {case}");

        // Full-recall check against the shadow copy.
        let q = Rect::new([-50.0, -50.0], [50.0, 50.0]);
        let (mut got, _) = tree.range(&q).unwrap();
        got.sort_by_key(|(_, d)| *d);
        let mut want: Vec<u64> = shadow
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, d)| *d)
            .collect();
        want.sort_unstable();
        assert_eq!(
            got.into_iter().map(|(_, d)| d).collect::<Vec<_>>(),
            want,
            "case {case}"
        );
    }
}

#[test]
fn bulk_load_equals_insertion_results() {
    let mut rng = MiniRng::new(0xB01D_FACE);
    for case in 0..24 {
        let n = 1 + rng.below(399) as usize;
        let max = 6 + rng.below(18) as usize;
        let items: Vec<(Rect<2>, u64)> = (0..n)
            .map(|i| {
                let x = rng.range_f64(-1000.0, 1000.0);
                let y = rng.range_f64(-1000.0, 1000.0);
                (Rect::point([x, y]), i as u64)
            })
            .collect();
        let bulk = bulk_load_str(MemStore::new(), Params::with_max(max), items.clone());
        bulk.validate().unwrap();
        let mut incr = RStarTree::with_params(MemStore::new(), Params::with_max(max));
        for (r, d) in &items {
            incr.insert(*r, *d).unwrap();
        }
        let q = Rect::new([-250.0, -250.0], [250.0, 250.0]);
        let (mut a, _) = bulk.range(&q).unwrap();
        let (mut b, _) = incr.range(&q).unwrap();
        a.sort_by_key(|(_, d)| *d);
        b.sort_by_key(|(_, d)| *d);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn nearest_one_is_global_minimum() {
    let mut rng = MiniRng::new(0x0CEA_4F10);
    for case in 0..24 {
        let n = 1 + rng.below(199) as usize;
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.range_f64(-100.0, 100.0), rng.range_f64(-100.0, 100.0)))
            .collect();
        let (qx, qy) = (rng.range_f64(-150.0, 150.0), rng.range_f64(-150.0, 150.0));
        let mut tree = mem_tree(8);
        for (i, (x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::point([*x, *y]), i as u64).unwrap();
        }
        let q = [qx, qy];
        let (got, _) = tree
            .nearest_by(1, |r| r.min_dist_sq(&q), |r, _| Some(r.min_dist_sq(&q)))
            .unwrap();
        let best = pts
            .iter()
            .map(|(x, y)| (x - qx) * (x - qx) + (y - qy) * (y - qy))
            .fold(f64::INFINITY, f64::min);
        assert!((got[0].dist - best).abs() < 1e-9, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Fault-tolerance satellites: forced-reinsert exercise and containment
// invariants under mixed insert/delete workloads.
// ---------------------------------------------------------------------

/// Walks the whole tree checking that every parent entry rectangle
/// *contains* its entire subtree (a weaker cousin of `validate`'s exact-MBR
/// check, asserted explicitly because containment is what query soundness
/// rests on).
fn assert_containment(tree: &Tree2) {
    fn rec(tree: &Tree2, id: NodeId, bound: Option<&Rect<2>>) {
        let node = tree.store().get(id).unwrap();
        for e in &node.entries {
            if let Some(b) = bound {
                assert!(
                    b.contains_rect(&e.rect),
                    "entry rect {:?} escapes parent bound {:?}",
                    e.rect,
                    b
                );
            }
            if !node.is_leaf() {
                rec(tree, e.child(), Some(&e.rect));
            }
        }
    }
    rec(tree, tree.root_id(), None);
}

/// Forced reinsertion must actually run (not just split) and leave both the
/// exact-MBR invariants and containment intact, with full recall.
#[test]
fn forced_reinsert_preserves_invariants_and_recall() {
    for seed in [11u64, 47, 901] {
        let mut rng = MiniRng::new(seed);
        // Small fanout with a large reinsert fraction maximises the number
        // of forced-reinsert events; clustered input makes overflow common.
        let params = Params {
            max_entries: 8,
            min_entries: 3,
            reinsert_count: 3,
        };
        let mut tree: Tree2 = RStarTree::with_params(MemStore::new(), params);
        let mut items = Vec::new();
        for i in 0..600u64 {
            // Clustered around a handful of centres so one subtree keeps
            // overflowing and the reinsert path fires repeatedly.
            let cx = (rng.below(5) as f64) * 400.0;
            let cy = (rng.below(5) as f64) * 400.0;
            let p = Rect::point([
                cx + rng.range_f64(-20.0, 20.0),
                cy + rng.range_f64(-20.0, 20.0),
            ]);
            tree.insert(p, i).unwrap();
            items.push((p, i));
            if i % 97 == 0 {
                assert_containment(&tree);
            }
        }
        let nodes = tree.validate().unwrap();
        assert_containment(&tree);
        // Reinsertion should pack better than the pure-split worst case.
        assert!(nodes < 220, "seed {seed}: too many nodes: {nodes}");
        let (hits, _) = tree.range(&Rect::new([-1e9, -1e9], [1e9, 1e9])).unwrap();
        assert_eq!(hits.len(), 600, "seed {seed}");
        // Point recall for a sample of items.
        for (r, d) in items.iter().step_by(37) {
            let (got, _) = tree.range(r).unwrap();
            assert!(got.iter().any(|(_, gd)| gd == d), "seed {seed}: lost {d}");
        }
    }
}

/// Mixed insert/delete workloads (with deletes aggressive enough to force
/// condensation and orphan reinsertion) keep MBR containment and exact
/// parent rectangles at every step.
#[test]
fn mbr_containment_under_mixed_insert_delete() {
    let mut rng = MiniRng::new(0xC0FF_EE00);
    for case in 0..12 {
        let max = 4 + rng.below(10) as usize;
        let mut tree = mem_tree(max);
        let mut live: Vec<(Rect<2>, u64)> = Vec::new();
        let mut next = 0u64;
        for step in 0..400 {
            // Waves: mostly-insert phases then mostly-delete phases, so the
            // tree grows tall and then condenses hard.
            let deleting = (step / 50) % 2 == 1;
            let del = deleting && !live.is_empty() && rng.below(10) < 7;
            if del {
                let k = rng.below(live.len() as u64) as usize;
                let victim = live.swap_remove(k);
                assert!(
                    tree.delete(&victim.0, victim.1).unwrap(),
                    "case {case}: victim {} vanished",
                    victim.1
                );
            } else {
                let p = Rect::point([rng.range_f64(-500.0, 500.0), rng.range_f64(-500.0, 500.0)]);
                tree.insert(p, next).unwrap();
                live.push((p, next));
                next += 1;
            }
            if step % 23 == 0 {
                assert_containment(&tree);
            }
        }
        tree.validate().unwrap();
        assert_containment(&tree);
        assert_eq!(tree.len(), live.len(), "case {case}");
        let (mut got, _) = tree.range(&Rect::new([-1e9, -1e9], [1e9, 1e9])).unwrap();
        got.sort_by_key(|(_, d)| *d);
        let mut want: Vec<u64> = live.iter().map(|(_, d)| *d).collect();
        want.sort_unstable();
        assert_eq!(
            got.into_iter().map(|(_, d)| d).collect::<Vec<_>>(),
            want,
            "case {case}"
        );
    }
}
