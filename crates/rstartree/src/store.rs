//! Node stores: where tree nodes live and where accesses are counted.
//!
//! Both stores count every node read/write. For [`PagedStore`] a node read
//! is literally a page read on the underlying [`pagestore::Disk`] (or a
//! buffer-pool lookup when a pool is attached); for [`MemStore`] the
//! counters model the same traffic without serialisation cost. Experiments
//! use the counters as the paper's "number of disk accesses".

use crate::node::{Node, NodeId};
use pagestore::sync::Mutex;
use pagestore::{BufferPool, PageDevice, PageError, PageId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Node-access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Node reads.
    pub reads: u64,
    /// Node writes.
    pub writes: u64,
}

/// Storage abstraction for tree nodes.
///
/// Accessors return [`PageError`] when the backing device fails (only
/// possible for paged stores over a faulty device); passing an id that was
/// never allocated or already freed is a caller bug and still panics.
pub trait NodeStore<const D: usize> {
    /// Allocates a slot for a node and stores it.
    fn alloc(&self, node: &Node<D>) -> Result<NodeId, PageError>;

    /// Runs `f` over the stored node, counting one read.
    fn read<R>(&self, id: NodeId, f: &mut dyn FnMut(&Node<D>) -> R) -> Result<R, PageError>;

    /// Replaces a stored node, counting one write.
    fn write(&self, id: NodeId, node: &Node<D>) -> Result<(), PageError>;

    /// Frees a node's slot.
    fn free(&self, id: NodeId);

    /// Counter snapshot.
    fn stats(&self) -> StoreStats;

    /// Zeroes the counters.
    fn reset_stats(&self);

    /// Convenience: clone the node out.
    fn get(&self, id: NodeId) -> Result<Node<D>, PageError> {
        self.read(id, &mut |n| n.clone())
    }
}

/// In-memory node store. Fast, still counts accesses.
#[derive(Default)]
pub struct MemStore<const D: usize> {
    slots: Mutex<MemSlots<D>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

#[derive(Default)]
struct MemSlots<const D: usize> {
    nodes: Vec<Option<Node<D>>>,
    free: Vec<NodeId>,
}

impl<const D: usize> MemStore<D> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(MemSlots {
                nodes: Vec::new(),
                free: Vec::new(),
            }),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        let slots = self.slots.lock();
        slots.nodes.iter().filter(|s| s.is_some()).count()
    }

    /// True when no nodes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<const D: usize> NodeStore<D> for MemStore<D> {
    fn alloc(&self, node: &Node<D>) -> Result<NodeId, PageError> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock();
        Ok(if let Some(id) = slots.free.pop() {
            slots.nodes[id.0 as usize] = Some(node.clone());
            id
        } else {
            let id = NodeId(u32::try_from(slots.nodes.len()).expect("store full"));
            slots.nodes.push(Some(node.clone()));
            id
        })
    }

    fn read<R>(&self, id: NodeId, f: &mut dyn FnMut(&Node<D>) -> R) -> Result<R, PageError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let slots = self.slots.lock();
        let node = slots
            .nodes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("read of unallocated node {id:?}"));
        Ok(f(node))
    }

    fn write(&self, id: NodeId, node: &Node<D>) -> Result<(), PageError> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock();
        let slot = slots
            .nodes
            .get_mut(id.0 as usize)
            .expect("write to unallocated node");
        assert!(slot.is_some(), "write to freed node {id:?}");
        *slot = Some(node.clone());
        Ok(())
    }

    fn free(&self, id: NodeId) {
        let mut slots = self.slots.lock();
        let slot = slots
            .nodes
            .get_mut(id.0 as usize)
            .expect("free of unallocated node");
        assert!(slot.take().is_some(), "double free of node {id:?}");
        slots.free.push(id);
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// Paged node store: every node is one serialised page.
///
/// With a [`BufferPool`] attached, node reads go through the pool (hits are
/// free, misses hit the disk); without one, every read is a disk access —
/// the "cold" configuration the paper's per-query access counts correspond
/// to.
pub struct PagedStore<const D: usize> {
    device: Arc<dyn PageDevice>,
    pool: Option<Arc<BufferPool>>,
}

impl<const D: usize> PagedStore<D> {
    /// Unbuffered store: every node read is a device read.
    pub fn new<Dev: PageDevice + 'static>(device: Arc<Dev>) -> Self {
        Self::new_dyn(device)
    }

    /// Unbuffered store over an already-erased device handle.
    pub fn new_dyn(device: Arc<dyn PageDevice>) -> Self {
        Self { device, pool: None }
    }

    /// Buffered store: node reads go through `pool`.
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Self {
            device: Arc::clone(pool.device()),
            pool: Some(pool),
        }
    }

    /// The device underneath.
    pub fn device(&self) -> &Arc<dyn PageDevice> {
        &self.device
    }

    /// The attached buffer pool, when any.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }
}

impl<const D: usize> NodeStore<D> for PagedStore<D> {
    fn alloc(&self, node: &Node<D>) -> Result<NodeId, PageError> {
        let pid = self.device.alloc();
        let id = NodeId(pid.0);
        self.write(id, node)?;
        Ok(id)
    }

    fn read<R>(&self, id: NodeId, f: &mut dyn FnMut(&Node<D>) -> R) -> Result<R, PageError> {
        let pid = PageId(id.0);
        match &self.pool {
            Some(pool) => pool.with_page(pid, |p| f(&Node::read_page(p))),
            None => {
                let page = self.device.read(pid)?;
                Ok(f(&Node::read_page(&page)))
            }
        }
    }

    fn write(&self, id: NodeId, node: &Node<D>) -> Result<(), PageError> {
        let pid = PageId(id.0);
        match &self.pool {
            Some(pool) => pool.with_page_mut(pid, |p| node.write_page(p)),
            None => {
                let mut page = pagestore::Page::zeroed();
                node.write_page(&mut page);
                self.device.write(pid, &page)
            }
        }
    }

    fn free(&self, id: NodeId) {
        let pid = PageId(id.0);
        match &self.pool {
            Some(pool) => pool.free(pid),
            None => self.device.free(pid),
        }
    }

    fn stats(&self) -> StoreStats {
        match &self.pool {
            // With a pool, physical accesses are the pool misses.
            Some(pool) => {
                let s = pool.stats();
                StoreStats {
                    reads: s.misses,
                    writes: s.writebacks,
                }
            }
            None => {
                let s = self.device.stats();
                StoreStats {
                    reads: s.reads,
                    writes: s.writes,
                }
            }
        }
    }

    fn reset_stats(&self) {
        match &self.pool {
            Some(pool) => pool.reset_stats(),
            None => self.device.reset_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use crate::rect::Rect;
    use pagestore::Disk;

    fn sample_node(level: u32, n: u64) -> Node<2> {
        let mut node = Node::new(level);
        for i in 0..n {
            node.entries
                .push(Entry::leaf(Rect::point([i as f64, -(i as f64)]), i));
        }
        node
    }

    fn exercise<S: NodeStore<2>>(store: &S) {
        let a = store.alloc(&sample_node(0, 5)).unwrap();
        let b = store.alloc(&sample_node(1, 3)).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.get(a).unwrap().entries.len(), 5);
        assert_eq!(store.get(b).unwrap().level, 1);

        store.write(a, &sample_node(0, 7)).unwrap();
        assert_eq!(store.get(a).unwrap().entries.len(), 7);

        store.free(b);
        let c = store.alloc(&sample_node(2, 1)).unwrap();
        assert_eq!(store.get(c).unwrap().level, 2);
    }

    #[test]
    fn mem_store_basics() {
        let store = MemStore::<2>::new();
        exercise(&store);
        let s = store.stats();
        assert!(s.reads >= 3 && s.writes >= 4, "{s:?}");
        store.reset_stats();
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn paged_store_basics() {
        let store = PagedStore::<2>::new(Arc::new(Disk::new()));
        exercise(&store);
        assert!(store.stats().reads >= 3);
    }

    #[test]
    fn paged_store_with_pool_counts_misses_not_hits() {
        let disk = Arc::new(Disk::new());
        let pool = Arc::new(BufferPool::new(disk, 8));
        let store = PagedStore::<2>::with_pool(pool);
        let a = store.alloc(&sample_node(0, 4)).unwrap();
        store.reset_stats();
        // The alloc left the page cached; repeated reads are hits.
        for _ in 0..5 {
            let _ = store.get(a);
        }
        assert_eq!(
            store.stats().reads,
            0,
            "cached reads must not count as disk accesses"
        );
    }

    #[test]
    fn mem_store_double_free_panics() {
        let store = MemStore::<2>::new();
        let a = store.alloc(&sample_node(0, 1)).unwrap();
        store.free(a);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.free(a)));
        assert!(r.is_err());
    }
}
