//! The R*-tree proper: insertion with forced reinsertion, deletion with
//! condensation, and the query machinery (predicate search, best-first
//! nearest neighbour, synchronized-descent joins).

use crate::node::{Entry, Node, NodeId};
use crate::params::Params;
use crate::rect::Rect;
use crate::split::rstar_split;
use crate::store::NodeStore;
use pagestore::PageError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters produced by one tree traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes read during the traversal (all levels) — the paper's
    /// `DA_all(q, r)`.
    pub nodes_accessed: u64,
    /// Leaf nodes read — the paper's `DA_leaf(q, r)`.
    pub leaf_nodes_accessed: u64,
    /// Entry rectangles tested against the predicate.
    pub entries_tested: u64,
    /// Leaf entries that satisfied the predicate (candidates).
    pub candidates: u64,
}

impl SearchStats {
    /// Merges counters from another traversal (ST-index sums per-
    /// transformation traversals this way).
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_accessed += other.nodes_accessed;
        self.leaf_nodes_accessed += other.leaf_nodes_accessed;
        self.entries_tested += other.entries_tested;
        self.candidates += other.candidates;
    }
}

/// Per-level structure summary produced by
/// [`RStarTree::level_summaries`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelSummary<const D: usize> {
    /// The level (0 = leaves).
    pub level: u32,
    /// Number of nodes at this level.
    pub nodes: u64,
    /// Mean node-MBR side length per dimension.
    pub avg_extent: [f64; D],
}

/// One result of a nearest-neighbour query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<const D: usize> {
    /// Distance reported by the caller's leaf scorer.
    pub dist: f64,
    /// The stored rectangle.
    pub rect: Rect<D>,
    /// The stored payload.
    pub data: u64,
}

/// Marker for which side of a join a tree is on (used by join statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinSide {
    /// The receiver of `join_with`.
    Left,
    /// The argument of `join_with`.
    Right,
}

/// An R*-tree over `D`-dimensional rectangles with `u64` payloads.
pub struct RStarTree<const D: usize, S: NodeStore<D>> {
    store: S,
    root: NodeId,
    root_level: u32,
    len: usize,
    params: Params,
    poisoned: bool,
}

enum Outcome<const D: usize> {
    /// Node absorbed the change; parent entry should be updated to this MBR.
    Fit(Rect<D>),
    /// Node split; parent must also add the sibling entry.
    Split(Rect<D>, Entry<D>),
}

impl<const D: usize, S: NodeStore<D>> RStarTree<D, S> {
    /// Creates an empty tree with page-derived parameters.
    pub fn new(store: S) -> Self {
        Self::with_params(store, Params::for_dimension::<D>())
    }

    /// Creates an empty tree with explicit parameters.
    pub fn with_params(store: S, params: Params) -> Self {
        params.validate();
        assert!(
            params.max_entries <= Node::<D>::page_capacity(),
            "fanout {} exceeds page capacity {}",
            params.max_entries,
            Node::<D>::page_capacity()
        );
        let root = store
            .alloc(&Node::new(0))
            .expect("root allocation must succeed on a healthy device");
        Self {
            store,
            root,
            root_level: 0,
            len: 0,
            params,
            poisoned: false,
        }
    }

    /// (Internal to the crate) assembles a tree from pre-built parts; used
    /// by bulk loading.
    pub(crate) fn from_parts(
        store: S,
        root: NodeId,
        root_level: u32,
        len: usize,
        params: Params,
    ) -> Self {
        Self {
            store,
            root,
            root_level,
            len,
            params,
            poisoned: false,
        }
    }

    /// Re-attaches a tree whose nodes already live in `store` — the
    /// persistence path: the caller supplies the root id, root level and
    /// entry count it recorded when the tree was saved. Call
    /// [`Self::validate`] afterwards to verify the structure if the
    /// provenance of the image is in doubt.
    pub fn open(store: S, root: NodeId, root_level: u32, len: usize, params: Params) -> Self {
        params.validate();
        Self::from_parts(store, root, root_level, len, params)
    }

    /// The root node's id (needed to reopen a persisted tree).
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// The root's level (= height − 1).
    pub fn root_level(&self) -> u32 {
        self.root_level
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (a single leaf root has height 1).
    pub fn height(&self) -> u32 {
        self.root_level + 1
    }

    /// The node store (for access statistics).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The tree parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// True once an [`Self::insert`] or [`Self::delete`] failed midway with
    /// a device error: the structure may have lost entries or hold stale
    /// parent rectangles. Queries on a poisoned tree still never panic and
    /// never fabricate entries, but results reflect the damaged structure.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// MBR of the whole tree ([`Rect::empty`] when empty).
    pub fn root_mbr(&self) -> Result<Rect<D>, PageError> {
        self.store.read(self.root, &mut |n| n.mbr())
    }

    // ------------------------------------------------------------------
    // Insertion (R*-tree: ChooseSubtree + OverflowTreatment)
    // ------------------------------------------------------------------

    /// Inserts a rectangle with its payload.
    ///
    /// On a device error the tree is marked [poisoned](Self::is_poisoned):
    /// a failure after the first node write may leave stale parent
    /// rectangles or drop entries queued for forced reinsertion.
    pub fn insert(&mut self, rect: Rect<D>, data: u64) -> Result<(), PageError> {
        // One forced reinsert per level per top-level insertion (R*-tree
        // OverflowTreatment); `true` means that level may still reinsert.
        let mut may_reinsert = vec![true; (self.root_level + 2) as usize];
        let mut pending: Vec<(Entry<D>, u32)> = vec![(Entry::leaf(rect, data), 0)];
        while let Some((entry, level)) = pending.pop() {
            if may_reinsert.len() <= self.root_level as usize + 1 {
                may_reinsert.resize(self.root_level as usize + 2, true);
            }
            if let Err(e) = self.insert_from_root(entry, level, &mut may_reinsert, &mut pending) {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_from_root(
        &mut self,
        entry: Entry<D>,
        target_level: u32,
        may_reinsert: &mut [bool],
        pending: &mut Vec<(Entry<D>, u32)>,
    ) -> Result<(), PageError> {
        debug_assert!(target_level <= self.root_level);
        match self.insert_rec(self.root, entry, target_level, may_reinsert, pending)? {
            Outcome::Fit(_) => {}
            Outcome::Split(root_mbr, sibling) => {
                let new_root = Node {
                    level: self.root_level + 1,
                    entries: vec![Entry::branch(root_mbr, self.root), sibling],
                };
                self.root = self.store.alloc(&new_root)?;
                self.root_level += 1;
            }
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        node_id: NodeId,
        entry: Entry<D>,
        target_level: u32,
        may_reinsert: &mut [bool],
        pending: &mut Vec<(Entry<D>, u32)>,
    ) -> Result<Outcome<D>, PageError> {
        let mut node = self.store.get(node_id)?;
        if node.level == target_level {
            node.entries.push(entry);
            return self.resolve_overflow(node_id, node, may_reinsert, pending);
        }

        let child_idx = Self::choose_subtree(&node, &entry.rect);
        let child_id = node.entries[child_idx].child();
        match self.insert_rec(child_id, entry, target_level, may_reinsert, pending)? {
            Outcome::Fit(child_mbr) => {
                node.entries[child_idx].rect = child_mbr;
                let mbr = node.mbr();
                self.store.write(node_id, &node)?;
                Ok(Outcome::Fit(mbr))
            }
            Outcome::Split(child_mbr, sibling) => {
                node.entries[child_idx].rect = child_mbr;
                node.entries.push(sibling);
                self.resolve_overflow(node_id, node, may_reinsert, pending)
            }
        }
    }

    /// R*-tree ChooseSubtree: minimum overlap enlargement when children are
    /// leaves, minimum area enlargement otherwise (ties: smaller area).
    fn choose_subtree(node: &Node<D>, rect: &Rect<D>) -> usize {
        debug_assert!(!node.entries.is_empty(), "choose_subtree on empty node");
        if node.level == 1 {
            // Children are leaves: minimise overlap enlargement.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries.iter().enumerate() {
                let enlarged = e.rect.union(rect);
                let overlap_delta: f64 = node
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, other)| {
                        enlarged.intersection_area(&other.rect)
                            - e.rect.intersection_area(&other.rect)
                    })
                    .sum();
                let key = (overlap_delta, e.rect.enlargement(rect), e.rect.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in node.entries.iter().enumerate() {
                let key = (e.rect.enlargement(rect), e.rect.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// OverflowTreatment: write through if the node fits, otherwise force-
    /// reinsert (first time at this level) or split.
    fn resolve_overflow(
        &mut self,
        node_id: NodeId,
        mut node: Node<D>,
        may_reinsert: &mut [bool],
        pending: &mut Vec<(Entry<D>, u32)>,
    ) -> Result<Outcome<D>, PageError> {
        if node.entries.len() <= self.params.max_entries {
            let mbr = node.mbr();
            self.store.write(node_id, &node)?;
            return Ok(Outcome::Fit(mbr));
        }

        let level = node.level as usize;
        if node_id != self.root && may_reinsert[level] {
            may_reinsert[level] = false;
            // Forced reinsert: drop the `p` entries whose centres are
            // farthest from the node centre and re-insert them later.
            let center = node.mbr().center();
            node.entries.sort_by(|a, b| {
                let da = Rect::point(center).center_dist_sq(&a.rect);
                let db = Rect::point(center).center_dist_sq(&b.rect);
                da.total_cmp(&db)
            });
            let keep = node.entries.len() - self.params.reinsert_count;
            let removed = node.entries.split_off(keep);
            let mbr = node.mbr();
            self.store.write(node_id, &node)?;
            // "Close reinsert": nearest of the removed first. `pending` is a
            // LIFO stack, so push farthest-first.
            for entry in removed.into_iter().rev() {
                pending.push((entry, node.level));
            }
            Ok(Outcome::Fit(mbr))
        } else {
            let level = node.level;
            let (left, right) = rstar_split(std::mem::take(&mut node.entries), &self.params);
            node.entries = left;
            let mbr = node.mbr();
            self.store.write(node_id, &node)?;
            let sibling = Node {
                level,
                entries: right,
            };
            let sibling_mbr = sibling.mbr();
            let sibling_id = self.store.alloc(&sibling)?;
            Ok(Outcome::Split(mbr, Entry::branch(sibling_mbr, sibling_id)))
        }
    }

    // ------------------------------------------------------------------
    // Deletion with condensation
    // ------------------------------------------------------------------

    /// Removes the entry with exactly this rectangle and payload. Returns
    /// whether it was found.
    ///
    /// On a device error the tree is marked [poisoned](Self::is_poisoned):
    /// condensation orphans that were not reinserted yet are lost.
    pub fn delete(&mut self, rect: &Rect<D>, data: u64) -> Result<bool, PageError> {
        let mut orphans: Vec<(Entry<D>, u32)> = Vec::new();
        let found = match self.delete_rec(self.root, rect, data, &mut orphans) {
            Ok(found) => found,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        if found.is_none() {
            return Ok(false);
        }
        self.len -= 1;
        if let Err(e) = self.delete_condense(orphans) {
            self.poisoned = true;
            return Err(e);
        }
        Ok(true)
    }

    /// Post-removal cleanup: root reset, orphan reinsertion, root shrink.
    fn delete_condense(&mut self, mut orphans: Vec<(Entry<D>, u32)>) -> Result<(), PageError> {
        // A branch root emptied out entirely (everything moved to orphans
        // or deleted): restart from an empty leaf.
        let root_now = self.store.get(self.root)?;
        if root_now.level > 0 && root_now.entries.is_empty() {
            self.store.free(self.root);
            self.root = self.store.alloc(&Node::new(0))?;
            self.root_level = 0;
        }

        // Reinsert orphans, highest level first so branch entries find a
        // tall enough tree; if the tree shrank below an orphan's level,
        // dissolve that subtree into leaf entries.
        orphans.sort_by_key(|(_, lvl)| Reverse(*lvl));
        for (entry, level) in orphans {
            if level == 0 {
                self.reinsert_entry(entry, 0)?;
            } else if level <= self.root_level {
                self.reinsert_entry(entry, level)?;
            } else {
                let mut leaves = Vec::new();
                self.dissolve(entry.child(), &mut leaves)?;
                for leaf in leaves {
                    self.reinsert_entry(leaf, 0)?;
                }
            }
        }

        // Shrink a root chain of single-child branch nodes.
        loop {
            let root_node = self.store.get(self.root)?;
            if root_node.level > 0 && root_node.entries.len() == 1 {
                let only = root_node.entries[0].child();
                self.store.free(self.root);
                self.root = only;
                self.root_level -= 1;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn reinsert_entry(&mut self, entry: Entry<D>, level: u32) -> Result<(), PageError> {
        let mut may_reinsert = vec![true; (self.root_level + 2) as usize];
        let mut pending = vec![(entry, level)];
        while let Some((e, lvl)) = pending.pop() {
            if may_reinsert.len() <= self.root_level as usize + 1 {
                may_reinsert.resize(self.root_level as usize + 2, true);
            }
            self.insert_from_root(e, lvl, &mut may_reinsert, &mut pending)?;
        }
        Ok(())
    }

    /// Collects all leaf entries under `node_id`, freeing the nodes.
    fn dissolve(&mut self, node_id: NodeId, out: &mut Vec<Entry<D>>) -> Result<(), PageError> {
        let node = self.store.get(node_id)?;
        if node.is_leaf() {
            out.extend(node.entries);
        } else {
            for e in &node.entries {
                self.dissolve(e.child(), out)?;
            }
        }
        self.store.free(node_id);
        Ok(())
    }

    /// Returns the node's new MBR when the entry was found and removed
    /// under `node_id`.
    fn delete_rec(
        &mut self,
        node_id: NodeId,
        rect: &Rect<D>,
        data: u64,
        orphans: &mut Vec<(Entry<D>, u32)>,
    ) -> Result<Option<Rect<D>>, PageError> {
        let mut node = self.store.get(node_id)?;
        if node.is_leaf() {
            let Some(idx) = node
                .entries
                .iter()
                .position(|e| e.payload == data && e.rect == *rect)
            else {
                return Ok(None);
            };
            node.entries.swap_remove(idx);
            let mbr = node.mbr();
            self.store.write(node_id, &node)?;
            return Ok(Some(mbr));
        }

        for i in 0..node.entries.len() {
            if !node.entries[i].rect.contains_rect(rect) {
                continue;
            }
            let child_id = node.entries[i].child();
            if let Some(child_mbr) = self.delete_rec(child_id, rect, data, orphans)? {
                let child = self.store.get(child_id)?;
                if child.entries.len() < self.params.min_entries {
                    // Condense: dissolve the underfull child, reinsert its
                    // entries at their level later.
                    let child_level = child.level;
                    for e in child.entries {
                        orphans.push((e, child_level));
                    }
                    self.store.free(child_id);
                    node.entries.swap_remove(i);
                } else {
                    node.entries[i].rect = child_mbr;
                }
                let mbr = node.mbr();
                self.store.write(node_id, &node)?;
                return Ok(Some(mbr));
            }
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Predicate-driven descent — the hook the MT-index algorithm uses.
    ///
    /// `pred` is evaluated on **every entry rectangle** met during the
    /// descent (branch and leaf alike); `true` on a branch entry descends
    /// into it, `true` on a leaf entry reports the entry via `on_data`.
    /// This mirrors steps 3–4 of Algorithm 1, where the transformation MBR
    /// is applied to each index rectangle before the intersection test.
    pub fn search(
        &self,
        mut pred: impl FnMut(&Rect<D>) -> bool,
        mut on_data: impl FnMut(&Rect<D>, u64),
    ) -> Result<SearchStats, PageError> {
        let mut stats = SearchStats::default();
        self.search_rec(self.root, &mut pred, &mut on_data, &mut stats)?;
        Ok(stats)
    }

    fn search_rec(
        &self,
        node_id: NodeId,
        pred: &mut impl FnMut(&Rect<D>) -> bool,
        on_data: &mut impl FnMut(&Rect<D>, u64),
        stats: &mut SearchStats,
    ) -> Result<(), PageError> {
        stats.nodes_accessed += 1;
        // Collect matches inside the (locked) read, recurse outside it — the
        // store's lock is not re-entrant.
        let node = self.store.get(node_id)?;
        stats.entries_tested += node.entries.len() as u64;
        if node.is_leaf() {
            stats.leaf_nodes_accessed += 1;
            for e in &node.entries {
                if pred(&e.rect) {
                    stats.candidates += 1;
                    on_data(&e.rect, e.payload);
                }
            }
        } else {
            for e in &node.entries {
                if pred(&e.rect) {
                    self.search_rec(e.child(), pred, on_data, stats)?;
                }
            }
        }
        Ok(())
    }

    /// All entries whose rectangle intersects `query`.
    #[allow(clippy::type_complexity)]
    pub fn range(&self, query: &Rect<D>) -> Result<(Vec<(Rect<D>, u64)>, SearchStats), PageError> {
        let mut out = Vec::new();
        let stats = self.search(|r| r.intersects(query), |r, d| out.push((*r, d)))?;
        Ok((out, stats))
    }

    /// Visits every stored entry.
    pub fn for_each(&self, mut f: impl FnMut(&Rect<D>, u64)) -> Result<(), PageError> {
        self.search(|_| true, |r, d| f(r, d)).map(|_| ())
    }

    /// Best-first k-nearest-neighbour with caller-supplied scoring.
    ///
    /// `node_bound(rect)` must lower-bound `leaf_score` for everything
    /// stored under `rect` (MINDIST is such a bound for plain Euclidean
    /// queries; the MT engine passes a transformed MINDIST). `leaf_score`
    /// returns the exact distance of a leaf entry, or `None` to disqualify
    /// it. Results are the `k` smallest by exact score.
    pub fn nearest_by(
        &self,
        k: usize,
        mut node_bound: impl FnMut(&Rect<D>) -> f64,
        mut leaf_score: impl FnMut(&Rect<D>, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats), PageError> {
        let mut stats = SearchStats::default();
        let mut heap: BinaryHeap<Reverse<HeapItem<D>>> = BinaryHeap::new();
        let mut out = Vec::new();
        if k == 0 {
            return Ok((out, stats));
        }
        heap.push(Reverse(HeapItem {
            key: 0.0,
            kind: ItemKind::Node(self.root),
        }));
        while let Some(Reverse(item)) = heap.pop() {
            match item.kind {
                ItemKind::Data(rect, data) => {
                    out.push(Neighbor {
                        dist: item.key,
                        rect,
                        data,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                ItemKind::Node(id) => {
                    stats.nodes_accessed += 1;
                    self.store.read(id, &mut |node: &Node<D>| {
                        if node.is_leaf() {
                            stats.leaf_nodes_accessed += 1;
                            for e in &node.entries {
                                stats.entries_tested += 1;
                                if let Some(d) = leaf_score(&e.rect, e.payload) {
                                    stats.candidates += 1;
                                    heap.push(Reverse(HeapItem {
                                        key: d,
                                        kind: ItemKind::Data(e.rect, e.payload),
                                    }));
                                }
                            }
                        } else {
                            for e in &node.entries {
                                stats.entries_tested += 1;
                                heap.push(Reverse(HeapItem {
                                    key: node_bound(&e.rect),
                                    kind: ItemKind::Node(e.child()),
                                }));
                            }
                        }
                    })?;
                }
            }
        }
        Ok((out, stats))
    }

    /// Depth-first branch-and-bound k-nearest-neighbour — the original
    /// algorithm of Roussopoulos, Kelley & Vincent (SIGMOD '95), which the
    /// paper cites for its NN sketch ("use any kind of metric (such as
    /// MINDIST or MINMAXDIST…) to prune the search"). Subtrees are visited
    /// in MINDIST order and pruned against the current k-th best; when
    /// `use_minmaxdist` is set, MINMAXDIST additionally seeds the pruning
    /// bound before any leaf is reached (only sound for k = 1 — every
    /// rectangle is guaranteed to contain an object at most MINMAXDIST
    /// away, but only *one* such object).
    ///
    /// Exposed alongside [`Self::nearest_by`] so the two classic strategies
    /// can be compared; both return exactly the k nearest by `point_dist`.
    pub fn nearest_dfs(
        &self,
        k: usize,
        query: &[f64; D],
        use_minmaxdist: bool,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats), PageError> {
        let mut stats = SearchStats::default();
        let mut best: BinaryHeap<HeapItem<D>> = BinaryHeap::new(); // max-heap of current k best
        if k > 0 {
            let mut prune = f64::INFINITY;
            self.nearest_dfs_rec(
                self.root,
                k,
                query,
                use_minmaxdist && k == 1,
                &mut best,
                &mut prune,
                &mut stats,
            )?;
        }
        let mut out: Vec<Neighbor<D>> = best
            .into_sorted_vec()
            .into_iter()
            .map(|item| match item.kind {
                ItemKind::Data(rect, data) => Neighbor {
                    dist: item.key,
                    rect,
                    data,
                },
                ItemKind::Node(_) => unreachable!("only data items are kept"),
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        Ok((out, stats))
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_dfs_rec(
        &self,
        node_id: NodeId,
        k: usize,
        query: &[f64; D],
        minmax: bool,
        best: &mut BinaryHeap<HeapItem<D>>,
        prune: &mut f64,
        stats: &mut SearchStats,
    ) -> Result<(), PageError> {
        stats.nodes_accessed += 1;
        let node = self.store.get(node_id)?;
        if node.is_leaf() {
            stats.leaf_nodes_accessed += 1;
            for e in &node.entries {
                stats.entries_tested += 1;
                let d = e.rect.min_dist_sq(query);
                if best.len() < k {
                    best.push(HeapItem {
                        key: d,
                        kind: ItemKind::Data(e.rect, e.payload),
                    });
                } else if d < best.peek().expect("k > 0").key {
                    best.pop();
                    best.push(HeapItem {
                        key: d,
                        kind: ItemKind::Data(e.rect, e.payload),
                    });
                }
                if best.len() == k {
                    *prune = prune.min(best.peek().expect("non-empty").key);
                }
            }
            return Ok(());
        }

        // Order children by MINDIST; optionally tighten the bound with
        // MINMAXDIST (k = 1 only).
        let mut children: Vec<(f64, f64, NodeId)> = node
            .entries
            .iter()
            .map(|e| {
                (
                    e.rect.min_dist_sq(query),
                    e.rect.min_max_dist_sq(query),
                    e.child(),
                )
            })
            .collect();
        children.sort_by(|a, b| a.0.total_cmp(&b.0));
        if minmax {
            for &(_, mm, _) in &children {
                *prune = prune.min(mm);
            }
        }
        for (mind, _, child) in children {
            stats.entries_tested += 1;
            let bound = if best.len() == k {
                prune.min(best.peek().expect("non-empty").key)
            } else {
                *prune
            };
            if mind > bound {
                continue; // downward prune
            }
            self.nearest_dfs_rec(child, k, query, minmax, best, prune, stats)?;
        }
        Ok(())
    }

    /// Optimal multi-step k-NN (Seidl–Kriegel style): leaf entries are
    /// enqueued with a *cheap* lower bound and only `refine`d to their exact
    /// (expensive) distance when they surface at the top of the priority
    /// queue. Guarantees the exact k results while refining as few entries
    /// as the bounds allow — `stats.candidates` counts refinements.
    ///
    /// Requirements: `node_bound` lower-bounds `leaf_bound` for everything
    /// under the rectangle, and `leaf_bound(r, d) ≤ refine(r, d)`.
    pub fn nearest_by_refine(
        &self,
        k: usize,
        node_bound: impl FnMut(&Rect<D>) -> f64,
        leaf_bound: impl FnMut(&Rect<D>, u64) -> f64,
        refine: impl FnMut(&Rect<D>, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats), PageError> {
        self.nearest_by_refine_bounded(k, f64::INFINITY, node_bound, leaf_bound, refine)
    }

    /// [`Self::nearest_by_refine`] seeded with an external pruning bound:
    /// only entries with exact distance `≤ bound` are returned, and any
    /// subtree or candidate whose lower bound exceeds `bound` is never
    /// expanded or refined. A scatter-gather caller searching many trees
    /// passes the running global k-th distance here so later trees prune
    /// against what earlier trees already found; `bound = ∞` recovers the
    /// plain behaviour exactly. The `≤` (rather than `<`) keeps entries
    /// tied with the bound, so a deterministic cross-tree tie-break stays
    /// possible.
    pub fn nearest_by_refine_bounded(
        &self,
        k: usize,
        bound: f64,
        mut node_bound: impl FnMut(&Rect<D>) -> f64,
        mut leaf_bound: impl FnMut(&Rect<D>, u64) -> f64,
        mut refine: impl FnMut(&Rect<D>, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<D>>, SearchStats), PageError> {
        let mut stats = SearchStats::default();
        let mut heap: BinaryHeap<Reverse<RefineItem<D>>> = BinaryHeap::new();
        let mut out = Vec::new();
        if k == 0 {
            return Ok((out, stats));
        }
        heap.push(Reverse(RefineItem {
            key: 0.0,
            kind: RefineKind::Node(self.root),
        }));
        while let Some(Reverse(item)) = heap.pop() {
            // The heap is min-ordered: once the head's lower bound exceeds
            // the external bound, nothing better can ever surface.
            if item.key > bound {
                break;
            }
            match item.kind {
                RefineKind::Exact(rect, data) => {
                    out.push(Neighbor {
                        dist: item.key,
                        rect,
                        data,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                RefineKind::Candidate(rect, data) => {
                    stats.candidates += 1;
                    if let Some(exact) = refine(&rect, data) {
                        heap.push(Reverse(RefineItem {
                            key: exact,
                            kind: RefineKind::Exact(rect, data),
                        }));
                    }
                }
                RefineKind::Node(id) => {
                    stats.nodes_accessed += 1;
                    self.store.read(id, &mut |node: &Node<D>| {
                        if node.is_leaf() {
                            stats.leaf_nodes_accessed += 1;
                            for e in &node.entries {
                                stats.entries_tested += 1;
                                heap.push(Reverse(RefineItem {
                                    key: leaf_bound(&e.rect, e.payload),
                                    kind: RefineKind::Candidate(e.rect, e.payload),
                                }));
                            }
                        } else {
                            for e in &node.entries {
                                stats.entries_tested += 1;
                                heap.push(Reverse(RefineItem {
                                    key: node_bound(&e.rect),
                                    kind: RefineKind::Node(e.child()),
                                }));
                            }
                        }
                    })?;
                }
            }
        }
        Ok((out, stats))
    }

    /// Synchronized-descent join against another tree. `pair_pred` must be
    /// a symmetric filter that is *monotone*: true on a pair of data
    /// rectangles implies true on every pair of ancestors (intersection
    /// tests after MBR transformation have this property — Lemma 1).
    pub fn join_with<S2: NodeStore<D>>(
        &self,
        other: &RStarTree<D, S2>,
        mut pair_pred: impl FnMut(&Rect<D>, &Rect<D>) -> bool,
        mut on_pair: impl FnMut(&Rect<D>, u64, &Rect<D>, u64),
    ) -> Result<SearchStats, PageError> {
        let mut stats = SearchStats::default();
        self.join_rec(
            other,
            self.root,
            other.root,
            &mut pair_pred,
            &mut on_pair,
            &mut stats,
        )?;
        Ok(stats)
    }

    fn join_rec<S2: NodeStore<D>>(
        &self,
        other: &RStarTree<D, S2>,
        id1: NodeId,
        id2: NodeId,
        pred: &mut impl FnMut(&Rect<D>, &Rect<D>) -> bool,
        on_pair: &mut impl FnMut(&Rect<D>, u64, &Rect<D>, u64),
        stats: &mut SearchStats,
    ) -> Result<(), PageError> {
        let n1 = self.store.get(id1)?;
        let n2 = other.store.get(id2)?;
        stats.nodes_accessed += 2;
        match (n1.is_leaf(), n2.is_leaf()) {
            (true, true) => {
                stats.leaf_nodes_accessed += 2;
                for e1 in &n1.entries {
                    for e2 in &n2.entries {
                        stats.entries_tested += 1;
                        if pred(&e1.rect, &e2.rect) {
                            on_pair(&e1.rect, e1.payload, &e2.rect, e2.payload);
                        }
                    }
                }
            }
            (false, false) => {
                for e1 in &n1.entries {
                    for e2 in &n2.entries {
                        stats.entries_tested += 1;
                        if pred(&e1.rect, &e2.rect) {
                            self.join_rec(other, e1.child(), e2.child(), pred, on_pair, stats)?;
                        }
                    }
                }
            }
            (false, true) => {
                let r2 = n2.mbr();
                for e1 in &n1.entries {
                    stats.entries_tested += 1;
                    if pred(&e1.rect, &r2) {
                        self.join_rec(other, e1.child(), id2, pred, on_pair, stats)?;
                    }
                }
            }
            (true, false) => {
                let r1 = n1.mbr();
                for e2 in &n2.entries {
                    stats.entries_tested += 1;
                    if pred(&r1, &e2.rect) {
                        self.join_rec(other, id1, e2.child(), pred, on_pair, stats)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Duplicate-free self join: every unordered pair of distinct entries
    /// satisfying `pair_pred` is reported exactly once.
    pub fn self_join(
        &self,
        mut pair_pred: impl FnMut(&Rect<D>, &Rect<D>) -> bool,
        mut on_pair: impl FnMut(&Rect<D>, u64, &Rect<D>, u64),
    ) -> Result<SearchStats, PageError> {
        let mut stats = SearchStats::default();
        self.self_join_rec(
            self.root,
            self.root,
            &mut pair_pred,
            &mut on_pair,
            &mut stats,
        )?;
        Ok(stats)
    }

    fn self_join_rec(
        &self,
        id1: NodeId,
        id2: NodeId,
        pred: &mut impl FnMut(&Rect<D>, &Rect<D>) -> bool,
        on_pair: &mut impl FnMut(&Rect<D>, u64, &Rect<D>, u64),
        stats: &mut SearchStats,
    ) -> Result<(), PageError> {
        if id1 == id2 {
            let n = self.store.get(id1)?;
            stats.nodes_accessed += 1;
            if n.is_leaf() {
                stats.leaf_nodes_accessed += 1;
                for i in 0..n.entries.len() {
                    for j in (i + 1)..n.entries.len() {
                        stats.entries_tested += 1;
                        let (a, b) = (&n.entries[i], &n.entries[j]);
                        if pred(&a.rect, &b.rect) {
                            on_pair(&a.rect, a.payload, &b.rect, b.payload);
                        }
                    }
                }
            } else {
                for i in 0..n.entries.len() {
                    for j in i..n.entries.len() {
                        stats.entries_tested += 1;
                        let (a, b) = (&n.entries[i], &n.entries[j]);
                        if pred(&a.rect, &b.rect) {
                            self.self_join_rec(a.child(), b.child(), pred, on_pair, stats)?;
                        }
                    }
                }
            }
        } else {
            let n1 = self.store.get(id1)?;
            let n2 = self.store.get(id2)?;
            stats.nodes_accessed += 2;
            debug_assert_eq!(n1.level, n2.level, "self-join descends level-synchronously");
            if n1.is_leaf() {
                stats.leaf_nodes_accessed += 2;
                for a in &n1.entries {
                    for b in &n2.entries {
                        stats.entries_tested += 1;
                        if pred(&a.rect, &b.rect) {
                            on_pair(&a.rect, a.payload, &b.rect, b.payload);
                        }
                    }
                }
            } else {
                for a in &n1.entries {
                    for b in &n2.entries {
                        stats.entries_tested += 1;
                        if pred(&a.rect, &b.rect) {
                            self.self_join_rec(a.child(), b.child(), pred, on_pair, stats)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural summaries (cost estimation support)
    // ------------------------------------------------------------------

    /// Per-level structure summary: node counts and mean node-MBR extents,
    /// the inputs of analytical R-tree cost models (Theodoridis & Sellis,
    /// PODS '96 — the estimation techniques §4.3 of the ICDE '99 paper
    /// discusses). One full tree walk.
    pub fn level_summaries(&self) -> Result<Vec<LevelSummary<D>>, PageError> {
        let mut acc: Vec<(u64, [f64; D])> = vec![(0, [0.0; D]); self.height() as usize];
        self.summarize_rec(self.root, &mut acc)?;
        Ok(acc
            .into_iter()
            .enumerate()
            .map(|(level, (nodes, extent_sum))| {
                let mut avg_extent = [0.0; D];
                if nodes > 0 {
                    for (slot, total) in avg_extent.iter_mut().zip(&extent_sum) {
                        *slot = total / nodes as f64;
                    }
                }
                LevelSummary {
                    level: level as u32,
                    nodes,
                    avg_extent,
                }
            })
            .collect())
    }

    fn summarize_rec(
        &self,
        node_id: NodeId,
        acc: &mut Vec<(u64, [f64; D])>,
    ) -> Result<(), PageError> {
        let node = self.store.get(node_id)?;
        let mbr = node.mbr();
        let slot = &mut acc[node.level as usize];
        slot.0 += 1;
        if !mbr.is_empty() {
            for (d, total) in slot.1.iter_mut().enumerate() {
                *total += mbr.hi[d] - mbr.lo[d];
            }
        }
        if !node.is_leaf() {
            for e in &node.entries {
                self.summarize_rec(e.child(), acc)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural validation (used heavily by tests)
    // ------------------------------------------------------------------

    /// Checks every structural invariant; panics with a description on the
    /// first violation, returns `Err` when a node cannot be read at all
    /// (possible only over a faulty device). Returns the number of nodes.
    pub fn validate(&self) -> Result<usize, PageError> {
        let mut node_count = 0;
        let mut entry_count = 0;
        self.validate_rec(
            self.root,
            self.root_level,
            true,
            &mut node_count,
            &mut entry_count,
        )?;
        assert_eq!(
            entry_count, self.len,
            "len {} != counted entries {entry_count}",
            self.len
        );
        Ok(node_count)
    }

    fn validate_rec(
        &self,
        node_id: NodeId,
        expected_level: u32,
        is_root: bool,
        node_count: &mut usize,
        entry_count: &mut usize,
    ) -> Result<Rect<D>, PageError> {
        *node_count += 1;
        let node = self.store.get(node_id)?;
        assert_eq!(node.level, expected_level, "level mismatch at {node_id:?}");
        assert!(
            node.entries.len() <= self.params.max_entries,
            "node {node_id:?} overflows: {}",
            node.entries.len()
        );
        if !is_root && self.len > 0 {
            assert!(
                node.entries.len() >= self.params.min_entries,
                "node {node_id:?} underflows: {} < {}",
                node.entries.len(),
                self.params.min_entries
            );
        }
        if node.is_leaf() {
            *entry_count += node.entries.len();
        } else {
            assert!(
                !node.entries.is_empty() || is_root,
                "empty branch node {node_id:?}"
            );
            for e in &node.entries {
                let child_mbr = self.validate_rec(
                    e.child(),
                    expected_level - 1,
                    false,
                    node_count,
                    entry_count,
                )?;
                assert_eq!(
                    e.rect,
                    child_mbr,
                    "stale parent rect at {node_id:?} for child {:?}",
                    e.child()
                );
            }
        }
        Ok(node.mbr())
    }
}

struct RefineItem<const D: usize> {
    key: f64,
    kind: RefineKind<D>,
}

enum RefineKind<const D: usize> {
    Node(NodeId),
    Candidate(Rect<D>, u64),
    Exact(Rect<D>, u64),
}

impl<const D: usize> PartialEq for RefineItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<const D: usize> Eq for RefineItem<D> {}
impl<const D: usize> PartialOrd for RefineItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for RefineItem<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties: exact results surface before candidates, candidates before
        // nodes — avoids needless refinement/expansion at equal keys.
        self.key.total_cmp(&other.key).then_with(|| {
            let rank = |k: &RefineKind<D>| match k {
                RefineKind::Exact(..) => 0u8,
                RefineKind::Candidate(..) => 1,
                RefineKind::Node(_) => 2,
            };
            rank(&self.kind).cmp(&rank(&other.kind))
        })
    }
}

struct HeapItem<const D: usize> {
    key: f64,
    kind: ItemKind<D>,
}

enum ItemKind<const D: usize> {
    Node(NodeId),
    Data(Rect<D>, u64),
}

impl<const D: usize> PartialEq for HeapItem<D> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<const D: usize> Eq for HeapItem<D> {}
impl<const D: usize> PartialOrd for HeapItem<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize> Ord for HeapItem<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties between data and node items: pop Data first so equal-distance
        // results surface before equal-bound subtrees are expanded.
        self.key.total_cmp(&other.key).then_with(|| {
            let rank = |k: &ItemKind<D>| match k {
                ItemKind::Data(..) => 0u8,
                ItemKind::Node(_) => 1,
            };
            rank(&self.kind).cmp(&rank(&other.kind))
        })
    }
}
