//! The R*-tree topological split (Beckmann et al., §4.2).
//!
//! Axis choice minimises the *margin sum* over all candidate distributions;
//! distribution choice on the winning axis minimises *overlap*, breaking
//! ties by total area.

use crate::node::Entry;
use crate::params::Params;
use crate::rect::Rect;

/// Splits an overfull entry list (length `M + 1`) into two groups, each with
/// at least `params.min_entries` entries.
pub fn rstar_split<const D: usize>(
    mut entries: Vec<Entry<D>>,
    params: &Params,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let m = params.min_entries;
    let total = entries.len();
    assert!(total >= 2 * m, "cannot split {total} entries with min {m}");

    // ChooseSplitAxis: for each axis, the margin sum over both sort orders
    // and every legal distribution.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for sort_by_hi in [false, true] {
            sort_entries(&mut entries, axis, sort_by_hi);
            for (r1, r2) in distributions(&entries, m) {
                margin_sum += r1.margin() + r2.margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex on the winning axis: minimum overlap, ties by area.
    let mut best: Option<(bool, usize, f64, f64)> = None; // (sort_by_hi, split_at, overlap, area)
    for sort_by_hi in [false, true] {
        sort_entries(&mut entries, best_axis, sort_by_hi);
        for (k, (r1, r2)) in distributions(&entries, m).enumerate() {
            let overlap = r1.intersection_area(&r2);
            let area = r1.area() + r2.area();
            let candidate = (sort_by_hi, m + k, overlap, area);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    if overlap < b.2 || (overlap == b.2 && area < b.3) {
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
    }
    let (sort_by_hi, split_at, _, _) = best.expect("at least one distribution");
    sort_entries(&mut entries, best_axis, sort_by_hi);
    let right = entries.split_off(split_at);
    (entries, right)
}

fn sort_entries<const D: usize>(entries: &mut [Entry<D>], axis: usize, by_hi: bool) {
    if by_hi {
        entries.sort_by(|a, b| a.rect.hi[axis].total_cmp(&b.rect.hi[axis]));
    } else {
        entries.sort_by(|a, b| a.rect.lo[axis].total_cmp(&b.rect.lo[axis]));
    }
}

/// For sorted entries, yields the bounding boxes of each legal split
/// `(entries[..m+k], entries[m+k..])` for `k = 0 .. total − 2m`.
fn distributions<'a, const D: usize>(
    entries: &'a [Entry<D>],
    m: usize,
) -> impl Iterator<Item = (Rect<D>, Rect<D>)> + 'a {
    let total = entries.len();
    // Prefix MBRs and suffix MBRs so each distribution is O(1).
    let mut prefixes = Vec::with_capacity(total);
    let mut acc = Rect::empty();
    for e in entries {
        acc.enlarge(&e.rect);
        prefixes.push(acc);
    }
    let mut suffixes = vec![Rect::empty(); total];
    let mut acc = Rect::empty();
    for (i, e) in entries.iter().enumerate().rev() {
        acc.enlarge(&e.rect);
        suffixes[i] = acc;
    }
    (m..=total - m).map(move |split| (prefixes[split - 1], suffixes[split]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(p: [f64; 2], id: u64) -> Entry<2> {
        Entry::leaf(Rect::point(p), id)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters should split cleanly along x.
        let mut entries = Vec::new();
        for i in 0..5u64 {
            entries.push(leaf([i as f64 * 0.1, 0.0], i));
            entries.push(leaf([100.0 + i as f64 * 0.1, 0.0], 100 + i));
        }
        let params = Params::with_max(9);
        let (a, b) = rstar_split(entries, &params);
        let (ra, rb) = (
            Rect::union_all(a.iter().map(|e| &e.rect)),
            Rect::union_all(b.iter().map(|e| &e.rect)),
        );
        assert_eq!(ra.intersection_area(&rb), 0.0, "clusters must not overlap");
        let ids_a: Vec<u64> = a.iter().map(|e| e.payload).collect();
        assert!(
            ids_a.iter().all(|i| *i < 100) || ids_a.iter().all(|i| *i >= 100),
            "each side must hold one cluster, got {ids_a:?}"
        );
    }

    #[test]
    fn split_respects_minimums() {
        let entries: Vec<Entry<2>> = (0..11)
            .map(|i| leaf([i as f64, (i % 3) as f64], i))
            .collect();
        let params = Params::with_max(10); // m = 4
        let (a, b) = rstar_split(entries, &params);
        assert!(a.len() >= 4 && b.len() >= 4);
        assert_eq!(a.len() + b.len(), 11);
    }

    #[test]
    fn split_preserves_all_entries() {
        let entries: Vec<Entry<2>> = (0..9)
            .map(|i| leaf([(i * 7 % 5) as f64, (i * 3 % 7) as f64], i))
            .collect();
        let params = Params::with_max(8);
        let (a, b) = rstar_split(entries.clone(), &params);
        let mut ids: Vec<u64> = a.iter().chain(&b).map(|e| e.payload).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_too_few_panics() {
        let entries: Vec<Entry<2>> = (0..3).map(|i| leaf([i as f64, 0.0], i)).collect();
        let params = Params {
            max_entries: 10,
            min_entries: 4,
            reinsert_count: 3,
        };
        rstar_split(entries, &params);
    }

    #[test]
    fn identical_points_still_split_legally() {
        let entries: Vec<Entry<2>> = (0..9).map(|i| leaf([1.0, 1.0], i)).collect();
        let params = Params::with_max(8); // m = 3
        let (a, b) = rstar_split(entries, &params);
        assert!(a.len() >= 3 && b.len() >= 3);
    }
}
