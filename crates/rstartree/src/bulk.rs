//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Experiments rebuild indexes over corpora of up to 12 000 sequences many
//! times; STR packs leaves to ~100 % utilisation in O(n log n), which both
//! speeds the builds and gives every algorithm the same well-packed index
//! (insertion-built trees are also supported — see the equivalence tests).

use crate::node::{Entry, Node};
use crate::params::Params;
use crate::rect::Rect;
use crate::store::NodeStore;
use crate::tree::RStarTree;

/// Builds a tree over `items` with STR packing.
pub fn bulk_load_str<const D: usize, S: NodeStore<D>>(
    store: S,
    params: Params,
    items: Vec<(Rect<D>, u64)>,
) -> RStarTree<D, S> {
    params.validate();
    let len = items.len();
    if len == 0 {
        return RStarTree::with_params(store, params);
    }

    // Pack the leaf level.
    let mut entries: Vec<Entry<D>> = items
        .into_iter()
        .map(|(rect, data)| Entry::leaf(rect, data))
        .collect();
    let mut level = 0u32;
    loop {
        let nodes = tile_level(&mut entries, params.max_entries, level);
        if nodes.len() == 1 {
            let root = store
                .alloc(&nodes.into_iter().next().expect("one node"))
                .expect("bulk-load allocation must succeed on a healthy device");
            // The single node keeps its level so the tree height is right.
            let root_level = level;
            return RStarTree::from_parts(store, root, root_level, len, params);
        }
        // Store this level's nodes and build the parent entries.
        entries = nodes
            .into_iter()
            .map(|node| {
                let mbr = node.mbr();
                let id = store
                    .alloc(&node)
                    .expect("bulk-load allocation must succeed on a healthy device");
                Entry::branch(mbr, id)
            })
            .collect();
        level += 1;
    }
}

/// Tiles one level: sorts by the first axis, slices into vertical runs,
/// sorts each run by the next axis, and so on recursively; finally packs
/// consecutive entries into nodes of up to `cap` entries.
fn tile_level<const D: usize>(entries: &mut [Entry<D>], cap: usize, level: u32) -> Vec<Node<D>> {
    let node_count = entries.len().div_ceil(cap);
    str_sort(entries, cap, node_count, 0);
    // Distribute entries evenly across the nodes so no node is underfull:
    // sizes are ⌊n/k⌋ or ⌈n/k⌉, and ⌊n/⌈n/cap⌉⌋ ≥ ⌊cap/2⌋ ≥ min_entries.
    let base = entries.len() / node_count;
    let extra = entries.len() % node_count;
    let mut nodes = Vec::with_capacity(node_count);
    let mut off = 0;
    for i in 0..node_count {
        let size = base + usize::from(i < extra);
        nodes.push(Node {
            level,
            entries: entries[off..off + size].to_vec(),
        });
        off += size;
    }
    debug_assert_eq!(off, entries.len());
    nodes
}

fn str_sort<const D: usize>(entries: &mut [Entry<D>], cap: usize, node_count: usize, axis: usize) {
    if axis >= D || node_count <= 1 || entries.len() <= cap {
        return;
    }
    entries.sort_by(|a, b| {
        let ca = 0.5 * (a.rect.lo[axis] + a.rect.hi[axis]);
        let cb = 0.5 * (b.rect.lo[axis] + b.rect.hi[axis]);
        ca.total_cmp(&cb)
    });
    // Number of slabs along this axis: S = ceil(count^(1/(D−axis))).
    let remaining_axes = (D - axis) as f64;
    let slabs = (node_count as f64).powf(1.0 / remaining_axes).ceil() as usize;
    let slab_len = entries.len().div_ceil(slabs);
    if slab_len == 0 {
        return;
    }
    let per_slab_nodes = node_count.div_ceil(slabs);
    for slab in entries.chunks_mut(slab_len) {
        str_sort(slab, cap, per_slab_nodes, axis + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn points(n: usize) -> Vec<(Rect<2>, u64)> {
        (0..n)
            .map(|i| {
                let x = (i * 37 % 1000) as f64;
                let y = (i * 91 % 1000) as f64;
                (Rect::point([x, y]), i as u64)
            })
            .collect()
    }

    #[test]
    fn bulk_load_valid_and_complete() {
        for n in [0usize, 1, 5, 16, 100, 1234] {
            let tree = bulk_load_str(MemStore::<2>::new(), Params::with_max(16), points(n));
            assert_eq!(tree.len(), n);
            tree.validate().unwrap();
            let mut seen = Vec::new();
            tree.for_each(|_, d| seen.push(d)).unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan_on_range_queries() {
        let items = points(500);
        let tree = bulk_load_str(MemStore::<2>::new(), Params::with_max(16), items.clone());
        let query = Rect::new([100.0, 200.0], [600.0, 800.0]);
        let (mut got, _) = tree.range(&query).unwrap();
        got.sort_by_key(|(_, d)| *d);
        let mut expect: Vec<u64> = items
            .iter()
            .filter(|(r, _)| r.intersects(&query))
            .map(|(_, d)| *d)
            .collect();
        expect.sort_unstable();
        assert_eq!(got.iter().map(|(_, d)| *d).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn bulk_load_packs_tightly() {
        let tree = bulk_load_str(MemStore::<2>::new(), Params::with_max(10), points(1000));
        // 1000 points at fanout 10 → exactly 100 leaves + 10 branches + root.
        let nodes = tree.validate().unwrap();
        assert_eq!(nodes, 111);
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_deletes() {
        let mut tree = bulk_load_str(MemStore::<2>::new(), Params::with_max(8), points(200));
        tree.insert(Rect::point([5000.0, 5000.0]), 9999).unwrap();
        assert_eq!(tree.len(), 201);
        tree.validate().unwrap();
        let victim = points(200)[17];
        assert!(tree.delete(&victim.0, victim.1).unwrap());
        assert_eq!(tree.len(), 200);
        tree.validate().unwrap();
    }
}
