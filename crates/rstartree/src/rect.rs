//! Axis-aligned hyper-rectangles and the geometric predicates of the
//! R*-tree and of nearest-neighbour search.

/// An axis-aligned rectangle in `D` dimensions (`lo[i] ≤ hi[i]`).
///
/// Points are degenerate rectangles (`lo == hi`) — exactly how the paper
/// treats them when applying transformation MBRs ("a point can be seen as a
/// special kind of a rectangle", §4.1).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect<const D: usize> {
    /// Lower corner.
    pub lo: [f64; D],
    /// Upper corner.
    pub hi: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// A degenerate rectangle at `p`.
    pub fn point(p: [f64; D]) -> Self {
        Self { lo: p, hi: p }
    }

    /// Builds from corners, debug-asserting `lo ≤ hi` per dimension.
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "invalid rect: lo {lo:?} > hi {hi:?}"
        );
        Self { lo, hi }
    }

    /// The "empty" rectangle — identity for [`Self::union`]. Its corners are
    /// inverted infinities, so any union with it yields the other operand.
    pub fn empty() -> Self {
        Self {
            lo: [f64::INFINITY; D],
            hi: [f64::NEG_INFINITY; D],
        }
    }

    /// True for the [`Self::empty`] identity.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            lo[i] = lo[i].min(other.lo[i]);
            hi[i] = hi[i].max(other.hi[i]);
        }
        Self { lo, hi }
    }

    /// Grows (in place) to cover `other`.
    pub fn enlarge(&mut self, other: &Self) {
        for i in 0..D {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// MBR of an iterator of rectangles.
    pub fn union_all<'a>(rects: impl IntoIterator<Item = &'a Self>) -> Self {
        rects.into_iter().fold(Self::empty(), |acc, r| acc.union(r))
    }

    /// Hyper-volume (product of extents); 0 for empty.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Margin — the sum of edge lengths (the R*-tree split criterion).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// How much `self.area()` would grow to accommodate `other`.
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True when the rectangles share any point (closed intervals).
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Volume of the intersection (0 when disjoint).
    pub fn intersection_area(&self, other: &Self) -> f64 {
        let mut area = 1.0;
        for i in 0..D {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            area *= hi - lo;
        }
        area
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// True when point `p` lies inside (closed) `self`.
    pub fn contains_point(&self, p: &[f64; D]) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Centre point.
    pub fn center(&self) -> [f64; D] {
        let mut c = [0.0; D];
        for (i, slot) in c.iter_mut().enumerate() {
            *slot = 0.5 * (self.lo[i] + self.hi[i]);
        }
        c
    }

    /// Squared Euclidean distance between centres.
    pub fn center_dist_sq(&self, other: &Self) -> f64 {
        let a = self.center();
        let b = other.center();
        (0..D).map(|i| (a[i] - b[i]) * (a[i] - b[i])).sum()
    }

    /// MINDIST — squared distance from `p` to the nearest point of the
    /// rectangle (0 if inside). Lower-bounds the distance to anything
    /// stored within (Roussopoulos et al., SIGMOD '95).
    pub fn min_dist_sq(&self, p: &[f64; D]) -> f64 {
        (0..D)
            .map(|i| {
                let d = if p[i] < self.lo[i] {
                    self.lo[i] - p[i]
                } else if p[i] > self.hi[i] {
                    p[i] - self.hi[i]
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// MINMAXDIST — the smallest upper bound on the distance from `p` to at
    /// least one object inside the rectangle (Roussopoulos et al.). Along
    /// one axis take the *nearer face*, along all others the *farther* one,
    /// minimised over the axis choice.
    pub fn min_max_dist_sq(&self, p: &[f64; D]) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        // Pre-compute per-axis near-face (rm) and far-face (rM) squared gaps.
        let mut near = [0.0; D];
        let mut far = [0.0; D];
        for i in 0..D {
            let mid = 0.5 * (self.lo[i] + self.hi[i]);
            let rm = if p[i] <= mid { self.lo[i] } else { self.hi[i] };
            let rm_d = p[i] - rm;
            near[i] = rm_d * rm_d;
            let r_m = if p[i] >= mid { self.lo[i] } else { self.hi[i] };
            let rm_far = p[i] - r_m;
            far[i] = rm_far * rm_far;
        }
        let total_far: f64 = far.iter().sum();
        (0..D)
            .map(|k| total_far - far[k] + near[k])
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type R2 = Rect<2>;

    #[test]
    fn union_and_area() {
        let a = R2::new([0.0, 0.0], [2.0, 1.0]);
        let b = R2::new([1.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert_eq!(u, R2::new([0.0, -1.0], [3.0, 1.0]));
        assert_eq!(a.area(), 2.0);
        assert_eq!(u.area(), 6.0);
        assert_eq!(a.margin(), 3.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let e = R2::empty();
        let a = R2::new([1.0, 1.0], [2.0, 2.0]);
        assert!(e.is_empty());
        assert_eq!(e.union(&a), a);
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        assert!(!e.intersects(&a));
    }

    #[test]
    fn union_all_covers_inputs() {
        let rects = [
            R2::new([0.0, 0.0], [1.0, 1.0]),
            R2::new([5.0, -2.0], [6.0, 0.0]),
            R2::point([3.0, 3.0]),
        ];
        let mbr = R2::union_all(&rects);
        for r in &rects {
            assert!(mbr.contains_rect(r));
        }
        assert_eq!(mbr, R2::new([0.0, -2.0], [6.0, 3.0]));
    }

    #[test]
    fn intersection_tests() {
        let a = R2::new([0.0, 0.0], [2.0, 2.0]);
        let b = R2::new([1.0, 1.0], [3.0, 3.0]);
        let c = R2::new([2.5, 2.5], [4.0, 4.0]);
        assert!(a.intersects(&b));
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_area(&c), 0.0);
        // Touching edges intersect but have zero area.
        let d = R2::new([2.0, 0.0], [3.0, 1.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection_area(&d), 0.0);
    }

    #[test]
    fn containment() {
        let outer = R2::new([0.0, 0.0], [10.0, 10.0]);
        let inner = R2::new([1.0, 1.0], [2.0, 2.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_point(&[0.0, 10.0]));
        assert!(!outer.contains_point(&[-0.1, 5.0]));
    }

    #[test]
    fn enlargement_measures_growth() {
        let a = R2::new([0.0, 0.0], [1.0, 1.0]);
        let inside = R2::point([0.5, 0.5]);
        let outside = R2::point([2.0, 0.5]);
        assert_eq!(a.enlargement(&inside), 0.0);
        assert!((a.enlargement(&outside) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mindist_zero_inside_positive_outside() {
        let a = R2::new([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.min_dist_sq(&[1.0, 1.0]), 0.0);
        assert!((a.min_dist_sq(&[3.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((a.min_dist_sq(&[3.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn minmaxdist_bounds_mindist() {
        let a = R2::new([1.0, 1.0], [3.0, 4.0]);
        for p in [[0.0, 0.0], [2.0, 2.0], [10.0, -3.0], [1.5, 8.0]] {
            let mind = a.min_dist_sq(&p);
            let minmax = a.min_max_dist_sq(&p);
            assert!(
                mind <= minmax + 1e-12,
                "MINDIST {mind} > MINMAXDIST {minmax} at {p:?}"
            );
        }
    }

    #[test]
    fn minmaxdist_point_rect_is_exact() {
        // For a degenerate rectangle both metrics equal the point distance.
        let p = [3.0, -1.0];
        let r = R2::point([0.0, 3.0]);
        let exact = 9.0 + 16.0;
        assert!((r.min_dist_sq(&p) - exact).abs() < 1e-12);
        assert!((r.min_max_dist_sq(&p) - exact).abs() < 1e-12);
    }

    #[test]
    fn center_math() {
        let a = R2::new([0.0, 2.0], [4.0, 4.0]);
        assert_eq!(a.center(), [2.0, 3.0]);
        let b = R2::point([5.0, 7.0]);
        assert_eq!(a.center_dist_sq(&b), 9.0 + 16.0);
    }
}
