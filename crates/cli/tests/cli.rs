//! End-to-end test of the `simseq` binary: generate → build → info →
//! query → join → nn, all through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn simseq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simseq"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("simseq_cli_test").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("spawn simseq");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "command failed.\nstdout: {stdout}\nstderr: {stderr}"
    );
    (stdout, stderr)
}

#[test]
fn full_pipeline() {
    let dir = workdir("pipeline");
    let data = dir.join("data.csv");
    let idx = dir.join("idx");

    run_ok(
        simseq()
            .args([
                "gen", "--kind", "stocks", "--count", "120", "--len", "128", "--seed", "5", "--out",
            ])
            .arg(&data),
    );
    assert!(data.exists());

    let (stdout, _) = run_ok(
        simseq()
            .args(["build", "--data"])
            .arg(&data)
            .arg("--out")
            .arg(&idx),
    );
    assert!(stdout.contains("indexed 120 sequences"));

    let (stdout, _) = run_ok(simseq().args(["info", "--index"]).arg(&idx));
    assert!(stdout.contains("sequences:   120"));
    assert!(stdout.contains("length:      128"));

    // Query: sequence 7 must match itself under the smallest window.
    let (stdout, stderr) = run_ok(
        simseq()
            .args([
                "query",
                "--query-index",
                "7",
                "--ma",
                "5..20",
                "--rho",
                "0.96",
                "--limit",
                "3",
                "--index",
            ])
            .arg(&idx),
    );
    assert!(stdout.contains("S0007"), "self-match missing: {stdout}");
    assert!(stderr.contains("matches over"));

    // The three engines agree on the match count.
    let count = |engine: &str| -> String {
        let (_, stderr) = run_ok(
            simseq()
                .args([
                    "query",
                    "--query-index",
                    "7",
                    "--ma",
                    "5..20",
                    "--rho",
                    "0.96",
                    "--engine",
                    engine,
                    "--policy",
                    "safe",
                    "--index",
                ])
                .arg(&idx),
        );
        stderr.split(" matches").next().unwrap_or("").to_string()
    };
    let mt = count("mt");
    assert_eq!(mt, count("st"));
    assert_eq!(mt, count("scan"));

    // Join runs and reports pairs.
    let (_, stderr) = run_ok(
        simseq()
            .args([
                "join", "--ma", "5..8", "--rho", "0.9", "--limit", "2", "--index",
            ])
            .arg(&idx),
    );
    assert!(stderr.contains("qualifying pairs"));

    // NN returns the query itself first.
    let (stdout, _) = run_ok(
        simseq()
            .args([
                "nn",
                "--query-index",
                "7",
                "--k",
                "2",
                "--ma",
                "1..5",
                "--index",
            ])
            .arg(&idx),
    );
    assert!(stdout.lines().next().unwrap_or("").contains("S0007"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let out = simseq().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = simseq()
        .args(["query", "--index", "/nonexistent-simseq-dir"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("opening index"));

    let out = simseq()
        .args([
            "gen",
            "--kind",
            "nope",
            "--count",
            "1",
            "--len",
            "8",
            "--out",
            "/tmp/x.csv",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let (stdout, _) = run_ok(simseq().arg("help"));
    assert!(stdout.contains("USAGE"));
}
