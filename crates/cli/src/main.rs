//! `simseq` — similarity-based time-series queries from the command line.
//!
//! ```sh
//! simseq gen   --kind stocks --count 1068 --len 128 --seed 7 --out data.csv
//! simseq build --data data.csv --out idx/
//! simseq info  --index idx/
//! simseq query --index idx/ --query-index 42 --ma 5..34 --rho 0.96
//! simseq join  --index idx/ --ma 5..14 --rho 0.99
//! simseq nn    --index idx/ --query-index 42 --k 5 --ma 2..20
//! simseq serve --index idx/ --addr 127.0.0.1:7878
//! simseq load  --addr 127.0.0.1:7878 --conns 8 --ops 100
//! simseq promote --addr 127.0.0.1:7879
//! simseq metrics --addr 127.0.0.1:7878
//! simseq recover --index idx/ --wal wal/
//! simseq shard build --data data.csv --out sidx/ --shards 4
//! simseq shard query --index sidx/ --query-index 42 --ma 5..34 --rho 0.96
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("help") || argv.is_empty() {
        print!("{}", commands::USAGE);
        return;
    }
    // `shard` prefixes a nested subcommand: `simseq shard build --…`.
    if argv.first().map(String::as_str) == Some("shard") {
        if let Err(e) = commands::shard(&argv[1..]) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let result = Args::parse(&argv).and_then(|args| match args.sub() {
        "gen" => commands::gen(&args),
        "build" => commands::build(&args),
        "info" => commands::info(&args),
        "query" => commands::query(&args),
        "join" => commands::join(&args),
        "nn" => commands::nn(&args),
        "serve" => commands::serve(&args),
        "load" => commands::load(&args),
        "promote" => commands::promote(&args),
        "metrics" => commands::metrics(&args),
        "recover" => commands::recover(&args),
        other => Err(args::err(format!(
            "unknown subcommand `{other}`; try `simseq help`"
        ))),
    });
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
