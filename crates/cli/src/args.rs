//! A small hand-rolled argument parser: `--key value` flags plus a leading
//! subcommand. No external dependencies.

use std::collections::HashMap;

/// Parsed command line: subcommand plus `--key value` options.
pub struct Args {
    sub: String,
    options: HashMap<String, String>,
}

/// A user-facing CLI error (message already formatted).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Shorthand error constructor.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl Args {
    /// Parses `argv[1..]`: first token is the subcommand, the rest are
    /// `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut iter = argv.iter();
        let sub = iter
            .next()
            .ok_or_else(|| err("missing subcommand; try `simseq help`"))?;
        let mut options = HashMap::new();
        while let Some(token) = iter.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --flag, got `{token}`")))?;
            let value = iter
                .next()
                .ok_or_else(|| err(format!("--{key} needs a value")))?;
            if options.insert(key.to_string(), value.clone()).is_some() {
                return Err(err(format!("--{key} given twice")));
            }
        }
        Ok(Self {
            sub: sub.clone(),
            options,
        })
    }

    /// The subcommand.
    pub fn sub(&self) -> &str {
        &self.sub
    }

    /// A required string option.
    pub fn req(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required --{key}")))
    }

    /// An optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required parsed value.
    pub fn req_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        self.req(key)?.parse().map_err(|_| {
            err(format!(
                "--{key}: cannot parse `{}`",
                self.req(key).unwrap_or("")
            ))
        })
    }

    /// An optional parsed value with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.opt(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("--{key}: cannot parse `{raw}`"))),
        }
    }

    /// Parses `LO..HI` (inclusive) range options, e.g. `--ma 5..34`.
    pub fn range(&self, key: &str) -> Result<Option<(usize, usize)>, CliError> {
        let Some(raw) = self.opt(key) else {
            return Ok(None);
        };
        let (lo, hi) = raw
            .split_once("..")
            .ok_or_else(|| err(format!("--{key}: expected LO..HI, got `{raw}`")))?;
        let lo = lo
            .parse()
            .map_err(|_| err(format!("--{key}: bad LO `{lo}`")))?;
        let hi = hi
            .parse()
            .map_err(|_| err(format!("--{key}: bad HI `{hi}`")))?;
        if lo > hi {
            return Err(err(format!("--{key}: LO > HI")));
        }
        Ok(Some((lo, hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(&argv("query --index idx --rho 0.96")).unwrap();
        assert_eq!(a.sub(), "query");
        assert_eq!(a.req("index").unwrap(), "idx");
        let rho: f64 = a.req_parse("rho").unwrap();
        assert!((rho - 0.96).abs() < 1e-12);
        assert!(a.opt("missing").is_none());
        assert_eq!(a.parse_or("k", 7usize).unwrap(), 7);
    }

    #[test]
    fn parses_ranges() {
        let a = Args::parse(&argv("query --ma 5..34")).unwrap();
        assert_eq!(a.range("ma").unwrap(), Some((5, 34)));
        assert_eq!(a.range("shift").unwrap(), None);
        let bad = Args::parse(&argv("query --ma 9..3")).unwrap();
        assert!(bad.range("ma").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("q stray")).is_err());
        assert!(Args::parse(&argv("q --flag")).is_err());
        assert!(Args::parse(&argv("q --a 1 --a 2")).is_err());
    }
}
