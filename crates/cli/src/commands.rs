//! Subcommand implementations.

use crate::args::{err, Args, CliError};
use simquery::plan;
use simquery::prelude::*;
use simshard::{gather, ShardConfig, ShardedIndex};
use std::path::{Path, PathBuf};

/// Help text.
pub const USAGE: &str = "\
simseq — similarity-based queries for time series (Rafiei, ICDE '99)

USAGE:
  simseq gen   --kind walks|stocks --count N --len N --out FILE.csv [--seed S]
  simseq build --data FILE.csv --out DIR/
  simseq info  --index DIR/
  simseq query --index DIR/ (--query-index I | --query-csv FILE --row I)
               [--ma LO..HI] [--shift LO..HI] [--inverted yes]
               [--rho R | --eps E] [--engine auto|mt|st|scan]
               [--policy adaptive|safe|paper] [--mode symmetric|data-only]
               [--limit N]
  simseq join  --index DIR/ [--ma LO..HI] (--rho R | --eps E)
               [--engine auto|mt|st|scan] [--limit N]
  simseq nn    --index DIR/ (--query-index I | --query-csv FILE --row I)
               --k K [--ma LO..HI]
  simseq serve --index DIR/ [--addr HOST:PORT] [--workers N] [--queue N]
               [--max-conns N] [--pool-pages N] [--result-cache N]
               [--cache-floor COST] [--slow-query-ms N] [--trace-sample K]
               [--replicate-from HOST:PORT]
  simseq load  --addr HOST:PORT [--conns N] [--ops N] [--seed S]
               [--ma LO..HI] [--rho R] [--engine auto|mt|st|scan]
               [--verify-index DIR/] [--timeout-ms MS]
               [--failover HOST:PORT,HOST:PORT]
  simseq promote --addr HOST:PORT [--timeout-ms MS]
  simseq metrics --addr HOST:PORT [--trace N] [--timeout-ms MS]
  simseq recover --index DIR/ --wal DIR/ [--pool-pages N]
  simseq shard build --data FILE.csv --out DIR/ --shards N
               [--partitioner hash|round-robin|range]
  simseq shard info  --index DIR/
  simseq shard query --index DIR/ (--query-index I | --query-csv FILE --row I)
               [--ma LO..HI] [--rho R | --eps E] [--engine mt|st|scan]
               [--policy adaptive|safe] [--mode symmetric|data-only]
               [--limit N]
  simseq shard nn    --index DIR/ (--query-index I | --query-csv FILE --row I)
               --k K [--ma LO..HI]

Thresholds: --rho is a cross-correlation in [-1, 1], converted through
Eq. 9; --eps is a Euclidean distance over transformed normal forms.

`serve` runs the simserved line protocol (see crates/serve/PROTOCOL.md)
over the given index; with --replicate-from it runs an in-memory
read-only follower of a durable primary instead (writes get ERR
code=READONLY). `load` replays a seeded closed-loop workload against a
running server and prints a latency/throughput table; --failover lists
extra endpoints its client rotates to on ERR READONLY or connection
failure, and --timeout-ms bounds every socket operation (0 = none).

`promote` flips a running follower to primary: the follower bumps its
WAL epoch past everything it has seen, fences the old timeline, and
starts accepting writes from its acked prefix. The old primary demotes
itself to read-only the moment it sees the higher epoch.

`metrics` fetches a running server's METRICS exposition (one
`name{labels} value` line per metric — the same numbers STATS reports)
and, with --trace N, drains up to N recorded spans from its sampling
tracer. `serve --slow-query-ms N` logs queries at or over the
threshold; `--trace-sample K` records every K-th request's span tree
(0 disables); `--cache-floor COST` only admits query results whose
execution cost met the floor.

`recover` replays a write-ahead log (written by `simserved --wal`) on
top of the index snapshot, reports what it salvaged, and checkpoints so
the directory opens clean afterwards. It detects sharded directories by
their `sharding.txt`.

`shard build` partitions the corpus across N independent indexes (serve
the directory with `simserved --index DIR/` to get per-shard STATS);
`shard query`/`shard nn` scatter-gather across the shards and return
exactly the single-index answer.
";

type CliResult = Result<(), CliError>;

/// `simseq gen` — write a synthetic corpus as CSV.
pub fn gen(args: &Args) -> CliResult {
    let kind = match args.req("kind")? {
        "walks" => CorpusKind::SyntheticWalks,
        "stocks" => CorpusKind::StockCloses,
        other => return Err(err(format!("--kind must be walks|stocks, got `{other}`"))),
    };
    let count: usize = args.req_parse("count")?;
    let len: usize = args.req_parse("len")?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let out = PathBuf::from(args.req("out")?);
    let corpus = Corpus::generate(kind, count, len, seed);
    corpus
        .save_csv(&out)
        .map_err(|e| err(format!("writing {}: {e}", out.display())))?;
    println!(
        "wrote {count} sequences of length {len} to {}",
        out.display()
    );
    Ok(())
}

/// `simseq build` — index a CSV corpus and persist it.
pub fn build(args: &Args) -> CliResult {
    let data = PathBuf::from(args.req("data")?);
    let out = PathBuf::from(args.req("out")?);
    let corpus =
        Corpus::load_csv(&data).map_err(|e| err(format!("reading {}: {e}", data.display())))?;
    let index =
        SeqIndex::build(&corpus, IndexConfig::default()).ok_or_else(|| err("corpus is empty"))?;
    index
        .save(&out)
        .map_err(|e| err(format!("saving index: {e}")))?;
    // Names are needed later for reporting; keep them next to the index.
    std::fs::write(out.join("names.txt"), corpus.names().join("\n"))
        .map_err(|e| err(format!("saving names: {e}")))?;
    println!(
        "indexed {} sequences of length {} ({} skipped as degenerate) into {}",
        index.len(),
        index.seq_len(),
        index.skipped().len(),
        out.display()
    );
    Ok(())
}

/// `simseq info` — describe a persisted index.
pub fn info(args: &Args) -> CliResult {
    let (index, names) = open_index(args)?;
    println!("sequences:   {}", index.len());
    println!("length:      {}", index.seq_len());
    println!("tree height: {}", index.height());
    println!("leaf fanout: {}", index.leaf_capacity());
    println!("skipped:     {}", index.skipped().len());
    println!("deleted:     {}", index.deleted_count());
    if let Some(first) = names.first() {
        println!("first name:  {first}");
    }
    Ok(())
}

/// `simseq query` — Query 1.
pub fn query(args: &Args) -> CliResult {
    let (index, names) = open_index(args)?;
    let family = family_from(args, index.seq_len())?;
    let spec = spec_from(args)?;
    let q = query_series(args, &index)?;

    let engine = engine_pref_from(args)?;
    index
        .reset_counters()
        .map_err(|e| err(format!("resetting counters: {e}")))?;
    let lq = LogicalQuery::range(family.clone(), spec).with_engine(engine);
    let stats = StatsRegistry::new();
    let (chosen, out) = plan::run(&index, &stats, &lq, Some(&q)).map_err(|e| err(e.to_string()))?;
    let PlanOutput::Range(result) = out else {
        return Err(err("range plan produced a non-range result"));
    };

    let limit: usize = args.parse_or("limit", 20)?;
    let mut matches = result.matches.clone();
    matches.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    for m in matches.iter().take(limit) {
        println!(
            "{:24} via {:12} D = {:.4}",
            display_name(&names, m.seq),
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
    if matches.len() > limit {
        println!("… and {} more (raise --limit)", matches.len() - limit);
    }
    eprintln!(
        "{} matches over {} sequences | {}",
        result.matches.len(),
        result.matched_sequences().len(),
        result.metrics
    );
    eprintln!("{}", plan_line(&chosen));
    Ok(())
}

/// `simseq join` — Query 2.
pub fn join(args: &Args) -> CliResult {
    let (index, names) = open_index(args)?;
    let family = family_from(args, index.seq_len())?;
    let spec = spec_from(args)?;
    let engine = engine_pref_from(args)?;
    index
        .reset_counters()
        .map_err(|e| err(format!("resetting counters: {e}")))?;
    let lq = LogicalQuery::join(family.clone(), spec).with_engine(engine);
    let stats = StatsRegistry::new();
    let (chosen, out) = plan::run(&index, &stats, &lq, None).map_err(|e| err(e.to_string()))?;
    let PlanOutput::Join(result) = out else {
        return Err(err("join plan produced a non-join result"));
    };

    let limit: usize = args.parse_or("limit", 20)?;
    let mut matches = result.matches.clone();
    matches.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    for m in matches.iter().take(limit) {
        println!(
            "{:20} ~ {:20} via {:10} D = {:.4}",
            display_name(&names, m.seq_a),
            display_name(&names, m.seq_b),
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
    eprintln!(
        "{} qualifying pairs | {}",
        result.matches.len(),
        result.metrics
    );
    eprintln!("{}", plan_line(&chosen));
    Ok(())
}

/// `simseq nn` — k nearest neighbours under the family.
pub fn nn(args: &Args) -> CliResult {
    let (index, names) = open_index(args)?;
    let family = family_from(args, index.seq_len())?;
    let k: usize = args.req_parse("k")?;
    let q = query_series(args, &index)?;
    index
        .reset_counters()
        .map_err(|e| err(format!("resetting counters: {e}")))?;
    let lq = LogicalQuery::knn(family.clone(), k);
    let stats = StatsRegistry::new();
    let (_, out) = plan::run(&index, &stats, &lq, Some(&q)).map_err(|e| err(e.to_string()))?;
    let PlanOutput::Knn(matches, metrics) = out else {
        return Err(err("kNN plan produced a non-kNN result"));
    };
    for m in &matches {
        println!(
            "{:24} via {:12} D = {:.4}",
            display_name(&names, m.seq),
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
    eprintln!("{metrics}");
    Ok(())
}

/// `simseq serve` — serve a persisted index over TCP (blocks forever).
/// With `--replicate-from HOST:PORT` it runs an in-memory read-only
/// follower instead: `--index` seeds the starting state (optional —
/// without it the whole state bootstraps from a snapshot transfer).
pub fn serve(args: &Args) -> CliResult {
    let replicate_from = args.opt("replicate-from").map(str::to_string);
    let pool_pages: usize = args.parse_or("pool-pages", 256)?;
    let defaults = simserve::server::ServerConfig::default();
    let cfg = simserve::server::ServerConfig {
        addr: args.opt("addr").unwrap_or(&defaults.addr).to_string(),
        workers: args.parse_or("workers", defaults.workers)?,
        queue_depth: args.parse_or("queue", defaults.queue_depth)?,
        max_conns: args.parse_or("max-conns", defaults.max_conns)?,
        result_cache: args.parse_or("result-cache", defaults.result_cache)?,
        cache_floor: args.parse_or("cache-floor", defaults.cache_floor)?,
        slow_query_us: match args.opt("slow-query-ms") {
            None => defaults.slow_query_us,
            Some(raw) => raw
                .parse::<u64>()
                .map(|ms| ms.saturating_mul(1000))
                .map_err(|_| err(format!("--slow-query-ms must be an integer, got `{raw}`")))?,
        },
        trace_sample: args.parse_or("trace-sample", defaults.trace_sample)?,
    };
    let (shared, follower) = match &replicate_from {
        None => {
            let dir = PathBuf::from(args.req("index")?);
            let shared = SharedIndex::open(&dir, pool_pages)
                .map_err(|e| err(format!("opening index {}: {e}", dir.display())))?;
            (shared, None)
        }
        Some(primary) => {
            // Per-node jitter seed: distinct listen addresses give
            // distinct reconnect schedules, so a follower fleet doesn't
            // thundering-herd a recovering primary.
            let reconnect_seed = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                cfg.addr.hash(&mut h);
                h.finish()
            };
            let fopts = simserve::repl::FollowerOpts {
                reconnect_seed,
                ..simserve::repl::FollowerOpts::default()
            };
            let (shared, follower) = match args.opt("index") {
                None => simserve::repl::bootstrap(primary, fopts)
                    .map_err(|e| err(format!("bootstrapping from {primary}: {e}")))?,
                Some(dir) => {
                    let dir = PathBuf::from(dir);
                    let shared = SharedIndex::open(&dir, pool_pages)
                        .map_err(|e| err(format!("opening index {}: {e}", dir.display())))?;
                    let follower =
                        simserve::repl::Follower::connect(primary, shared.clone(), fopts)
                            .map_err(|e| err(format!("connecting to primary {primary}: {e}")))?;
                    (shared, follower)
                }
            };
            (shared, Some(follower))
        }
    };
    {
        let index = shared.read();
        let role = match &replicate_from {
            Some(primary) => format!("following {primary}, "),
            None => String::new(),
        };
        eprintln!(
            "serving {} sequences of length {} ({role}{} workers, queue {}, max {} conns)",
            index.len(),
            index.seq_len(),
            cfg.workers,
            cfg.queue_depth,
            cfg.max_conns
        );
    }
    let handle = match follower {
        None => simserve::server::serve(shared, &cfg)
            .map_err(|e| err(format!("starting server: {e}")))?,
        Some(follower) => {
            let stats = follower.stats();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let loop_handle = follower.spawn(std::sync::Arc::clone(&stop));
            let handle = simserve::server::serve_with(shared, &cfg, Some(stats))
                .map_err(|e| err(format!("starting server: {e}")))?;
            // Registered so a PROMOTE request can halt the poll loop
            // before flipping this server to primary.
            handle.repl().register_follower_loop(stop, loop_handle);
            handle
        }
    };
    println!("listening on {}", handle.addr);
    handle.join();
    Ok(())
}

/// `simseq load` — closed-loop load generation against a running server.
pub fn load(args: &Args) -> CliResult {
    let defaults = simserve::load::LoadConfig::default();
    let engine = match args.opt("engine").unwrap_or("mt") {
        "auto" => simserve::protocol::EngineKind::Auto,
        "mt" => simserve::protocol::EngineKind::Mt,
        "st" => simserve::protocol::EngineKind::St,
        "scan" => simserve::protocol::EngineKind::Scan,
        other => {
            return Err(err(format!(
                "--engine must be auto|mt|st|scan, got `{other}`"
            )))
        }
    };
    let verify = match args.opt("verify-index") {
        None => None,
        Some(dir) => {
            let pool_pages: usize = args.parse_or("pool-pages", 256)?;
            Some(
                // Read-only: the oracle may be the directory the server
                // under test is serving (and holding the LOCK on).
                SharedIndex::open_read_only(Path::new(dir), pool_pages)
                    .map_err(|e| err(format!("opening verify index {dir}: {e}")))?,
            )
        }
    };
    let cfg = simserve::load::LoadConfig {
        addr: args.req("addr")?.to_string(),
        conns: args.parse_or("conns", defaults.conns)?,
        ops_per_conn: args.parse_or("ops", defaults.ops_per_conn)?,
        seed: args.parse_or("seed", defaults.seed)?,
        ma: args.range("ma")?.unwrap_or(defaults.ma),
        rho: args.parse_or("rho", defaults.rho)?,
        engine,
        verify,
        failover_to: args
            .opt("failover")
            .map(|raw| {
                raw.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
        timeout_ms: match args.opt("timeout-ms") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| err(format!("--timeout-ms: cannot parse `{raw}`")))?,
            ),
        },
    };
    let report = simserve::load::run(&cfg).map_err(|e| err(format!("load run failed: {e}")))?;
    print!("{}", report.render());
    if report.total_errors() > 0 || report.total_parity_failures() > 0 {
        return Err(err(format!(
            "{} errors, {} parity failures",
            report.total_errors(),
            report.total_parity_failures()
        )));
    }
    Ok(())
}

/// `simseq promote` — flip a running follower to primary.
pub fn promote(args: &Args) -> CliResult {
    let addr = args.req("addr")?;
    let mut client = connect_client(args, addr)?;
    match client
        .promote()
        .map_err(|e| err(format!("PROMOTE failed: {e}")))?
    {
        Ok(epoch) => {
            println!("promoted: {addr} is now primary at epoch {epoch}");
            Ok(())
        }
        Err(resp) => Err(err(format!("PROMOTE rejected: {resp:?}"))),
    }
}

/// `simseq metrics` — fetch a running server's metrics exposition.
pub fn metrics(args: &Args) -> CliResult {
    let addr = args.req("addr")?;
    let mut client = connect_client(args, addr)?;
    let lines = client
        .metrics()
        .map_err(|e| err(format!("METRICS failed: {e}")))?
        .map_err(|resp| err(format!("METRICS rejected: {resp:?}")))?;
    for line in &lines {
        println!("{line}");
    }
    if let Some(n) = args.opt("trace") {
        let n: usize = n
            .parse()
            .map_err(|e| err(format!("--trace must be a count: {e}")))?;
        let events = client
            .trace(n)
            .map_err(|e| err(format!("TRACE failed: {e}")))?
            .map_err(|resp| err(format!("TRACE rejected: {resp:?}")))?;
        println!("# {} spans (oldest first)", events.len());
        for ev in &events {
            println!(
                "trace={} depth={} start_us={} dur_us={} {}",
                ev.trace, ev.depth, ev.start_us, ev.dur_us, ev.name
            );
        }
    }
    Ok(())
}

/// `simseq recover` — replay a WAL onto its snapshot and checkpoint.
pub fn recover(args: &Args) -> CliResult {
    let dir = PathBuf::from(args.req("index")?);
    let wal = PathBuf::from(args.req("wal")?);
    let pool_pages: usize = args.parse_or("pool-pages", 256)?;
    let policy = simwal::FsyncPolicy::Always;
    let oops = |e: &dyn std::fmt::Display| err(format!("recovering {}: {e}", dir.display()));
    if dir.join("sharding.txt").is_file() {
        let (sharded, rec) =
            ShardedIndex::open_durable(&dir, &wal, pool_pages, policy).map_err(|e| oops(&e))?;
        println!("shards:      {}", sharded.shard_count());
        println!("wal epoch:   {}", rec.epoch);
        println!("replayed:    {} frames", rec.replayed);
        println!(
            "dropped:     {} frames (past the first unsynced gap)",
            rec.dropped
        );
        println!(
            "stale:       {} frames (already in the snapshot)",
            rec.stale_frames
        );
        println!("torn bytes:  {} truncated", rec.truncated_bytes);
        let epoch = sharded.checkpoint().map_err(|e| oops(&e))?;
        println!(
            "checkpointed {} sequences at epoch {}",
            sharded.len(),
            epoch.expect("durable index checkpoints")
        );
    } else {
        let (shared, rep) =
            SharedIndex::open_durable(&dir, &wal, pool_pages, policy).map_err(|e| oops(&e))?;
        println!("wal epoch:   {}", rep.epoch);
        println!("replayed:    {} frames", rep.frames);
        println!(
            "stale:       {} frames (already in the snapshot)",
            rep.stale_frames
        );
        println!("torn bytes:  {} truncated", rep.truncated_bytes);
        let epoch = shared.checkpoint().map_err(|e| oops(&e))?;
        println!(
            "checkpointed {} sequences at epoch {}",
            shared.read().len(),
            epoch.expect("durable index checkpoints")
        );
    }
    Ok(())
}

/// `simseq shard …` — nested subcommands over a sharded index.
pub fn shard(argv: &[String]) -> CliResult {
    let args = Args::parse(argv)?;
    match args.sub() {
        "build" => shard_build(&args),
        "info" => shard_info(&args),
        "query" => shard_query(&args),
        "nn" => shard_nn(&args),
        other => Err(err(format!(
            "unknown shard subcommand `{other}`; try `simseq help`"
        ))),
    }
}

/// `simseq shard build` — partition a CSV corpus across N shards.
fn shard_build(args: &Args) -> CliResult {
    let data = PathBuf::from(args.req("data")?);
    let out = PathBuf::from(args.req("out")?);
    // The same shardcfg parse that backs `simserved --shards`.
    let cfg = ShardConfig::parse(args.req("shards")?, args.opt("partitioner")).map_err(err)?;
    let corpus =
        Corpus::load_csv(&data).map_err(|e| err(format!("reading {}: {e}", data.display())))?;
    let sharded = ShardedIndex::build(&corpus, cfg, IndexConfig::default())
        .map_err(|e| err(e.to_string()))?;
    sharded
        .save(&out)
        .map_err(|e| err(format!("saving sharded index: {e}")))?;
    std::fs::write(out.join("names.txt"), corpus.names().join("\n"))
        .map_err(|e| err(format!("saving names: {e}")))?;
    println!(
        "indexed {} sequences of length {} across {} shards ({}) into {}",
        sharded.len(),
        sharded.seq_len(),
        sharded.shard_count(),
        sharded.partitioner_kind(),
        out.display()
    );
    Ok(())
}

/// `simseq shard info` — describe a persisted sharded index.
fn shard_info(args: &Args) -> CliResult {
    let (sharded, names) = open_sharded(args)?;
    println!("sequences:   {}", sharded.len());
    println!("length:      {}", sharded.seq_len());
    println!("shards:      {}", sharded.shard_count());
    println!("partitioner: {}", sharded.partitioner_kind());
    println!("deleted:     {}", sharded.deleted_count());
    let loads = sharded.shard_loads();
    for (i, (load, handle)) in loads.iter().zip(sharded.shards()).enumerate() {
        let index = handle.read();
        println!("shard {i}:     {load} seqs, tree height {}", index.height());
    }
    if let Some(first) = names.first() {
        println!("first name:  {first}");
    }
    Ok(())
}

/// `simseq shard query` — Query 1, scatter-gathered across the shards.
fn shard_query(args: &Args) -> CliResult {
    let (sharded, names) = open_sharded(args)?;
    let family = family_from(args, sharded.seq_len())?;
    let spec = shard_spec_from(args)?;
    let q = shard_query_series(args, &sharded)?;
    let engine = engine_pref_from(args)?;
    sharded
        .reset_counters()
        .map_err(|e| err(format!("resetting counters: {e}")))?;
    let lq = LogicalQuery::range(family.clone(), spec).with_engine(engine);
    let (chosen, result, per_shard) =
        gather::execute_range(&sharded, &lq, &q).map_err(|e| err(e.to_string()))?;

    let limit: usize = args.parse_or("limit", 20)?;
    let mut matches = result.matches.clone();
    matches.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    for m in matches.iter().take(limit) {
        println!(
            "{:24} via {:12} D = {:.4}",
            display_name(&names, m.seq),
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
    if matches.len() > limit {
        println!("… and {} more (raise --limit)", matches.len() - limit);
    }
    eprintln!(
        "{} matches over {} sequences | {}",
        result.matches.len(),
        result.matched_sequences().len(),
        result.metrics
    );
    for (i, m) in per_shard.iter().enumerate() {
        eprintln!("  shard {i}: {m}");
    }
    eprintln!("{}", plan_line(&chosen));
    Ok(())
}

/// `simseq shard nn` — exact global kNN with bound propagation.
fn shard_nn(args: &Args) -> CliResult {
    let (sharded, names) = open_sharded(args)?;
    let family = family_from(args, sharded.seq_len())?;
    let k: usize = args.req_parse("k")?;
    let q = shard_query_series(args, &sharded)?;
    sharded
        .reset_counters()
        .map_err(|e| err(format!("resetting counters: {e}")))?;
    let lq = LogicalQuery::knn(family.clone(), k);
    let (_, matches, metrics, per_shard) =
        gather::execute_knn(&sharded, &lq, &q).map_err(|e| err(e.to_string()))?;
    for m in &matches {
        println!(
            "{:24} via {:12} D = {:.4}",
            display_name(&names, m.seq),
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
    eprintln!("{metrics}");
    for (i, m) in per_shard.iter().enumerate() {
        eprintln!("  shard {i}: {m}");
    }
    Ok(())
}

// ---------------------------------------------------------------------

/// Dials a server for the point commands (`promote`, `metrics`),
/// honouring `--timeout-ms` (0 = no socket timeouts).
fn connect_client(args: &Args, addr: &str) -> Result<simserve::client::Client, CliError> {
    let cfg = match args.opt("timeout-ms") {
        None => simserve::client::ClientConfig::default(),
        Some(raw) => {
            let ms: u64 = raw
                .parse()
                .map_err(|_| err(format!("--timeout-ms: cannot parse `{raw}`")))?;
            simserve::client::ClientConfig::with_timeout_ms(ms)
        }
    };
    simserve::client::Client::connect_with(addr, cfg)
        .map_err(|e| err(format!("connecting to {addr}: {e}")))
}

// Every `shard info`/`shard query`/`shard nn` invocation is read-only, so
// skip the directory LOCK and coexist with a live simserved on the same
// files.
fn open_sharded(args: &Args) -> Result<(ShardedIndex, Vec<String>), CliError> {
    let dir = PathBuf::from(args.req("index")?);
    let sharded = ShardedIndex::open_read_only(&dir, 256)
        .map_err(|e| err(format!("opening sharded index {}: {e}", dir.display())))?;
    let names = std::fs::read_to_string(dir.join("names.txt"))
        .map(|s| s.lines().map(String::from).collect())
        .unwrap_or_default();
    Ok((sharded, names))
}

/// Like [`spec_from`], but the `paper` filter policy is rejected: its
/// false dismissals depend on tree layout, so the answer would vary with
/// the shard count.
fn shard_spec_from(args: &Args) -> Result<RangeSpec, CliError> {
    if args.opt("policy") == Some("paper") {
        return Err(err(
            "--policy paper is tree-layout-dependent and may differ across \
             shard counts; use adaptive|safe",
        ));
    }
    spec_from(args)
}

fn shard_query_series(args: &Args, sharded: &ShardedIndex) -> Result<TimeSeries, CliError> {
    if let Some(raw) = args.opt("query-index") {
        let ordinal: usize = raw
            .parse()
            .map_err(|_| err(format!("--query-index: bad ordinal `{raw}`")))?;
        if ordinal >= sharded.len() {
            return Err(err(format!(
                "--query-index {ordinal} out of range (0..{})",
                sharded.len()
            )));
        }
        return sharded
            .fetch_series(ordinal)
            .map_err(|e| err(format!("fetching ordinal {ordinal}: {e}")));
    }
    csv_query_series(args)
}

// `info`/`query`/`join`/`nn` are read-only, so skip the directory LOCK
// and coexist with a live simserved on the same files.
fn open_index(args: &Args) -> Result<(SeqIndex, Vec<String>), CliError> {
    let dir = PathBuf::from(args.req("index")?);
    let index = SeqIndex::open_read_only(&dir, 256)
        .map_err(|e| err(format!("opening index {}: {e}", dir.display())))?;
    let names = std::fs::read_to_string(dir.join("names.txt"))
        .map(|s| s.lines().map(String::from).collect())
        .unwrap_or_default();
    Ok((index, names))
}

fn display_name(names: &[String], ordinal: usize) -> String {
    names
        .get(ordinal)
        .cloned()
        .unwrap_or_else(|| format!("#{ordinal}"))
}

fn query_series(args: &Args, index: &SeqIndex) -> Result<TimeSeries, CliError> {
    if let Some(raw) = args.opt("query-index") {
        let ordinal: usize = raw
            .parse()
            .map_err(|_| err(format!("--query-index: bad ordinal `{raw}`")))?;
        if ordinal >= index.len() {
            return Err(err(format!(
                "--query-index {ordinal} out of range (0..{})",
                index.len()
            )));
        }
        return index
            .fetch_series(ordinal)
            .map_err(|e| err(format!("fetching ordinal {ordinal}: {e}")));
    }
    csv_query_series(args)
}

fn csv_query_series(args: &Args) -> Result<TimeSeries, CliError> {
    let csv = Path::new(args.req("query-csv")?);
    let row: usize = args.req_parse("row")?;
    let corpus =
        Corpus::load_csv(csv).map_err(|e| err(format!("reading {}: {e}", csv.display())))?;
    if row >= corpus.len() {
        return Err(err(format!(
            "--row {row} out of range (0..{})",
            corpus.len()
        )));
    }
    Ok(corpus.series()[row].clone())
}

fn family_from(args: &Args, n: usize) -> Result<Family, CliError> {
    let mut parts: Vec<Family> = Vec::new();
    if let Some((lo, hi)) = args.range("ma")? {
        if hi > n {
            return Err(err(format!("--ma window {hi} exceeds sequence length {n}")));
        }
        parts.push(Family::moving_averages(lo.max(1)..=hi, n));
    }
    if let Some((lo, hi)) = args.range("shift")? {
        parts.push(Family::circular_shifts(lo..=hi, n));
    }
    let mut family = match parts.len() {
        0 => Family::moving_averages(1..=1, n), // identity
        1 => parts.pop().expect("one part"),
        // Several ranges: the composed family (§3.3 — shift, then smooth).
        _ => {
            let mut iter = parts.into_iter();
            let first = iter.next().expect("non-empty");
            iter.fold(first, |acc, next| next.compose(&acc))
        }
    };
    if args.opt("inverted") == Some("yes") {
        family = family.with_inverted();
    }
    Ok(family)
}

/// `--engine` → planner preference. `mt` stays the default (matching the
/// wire protocol); `auto` hands the choice to the cost model.
fn engine_pref_from(args: &Args) -> Result<EnginePref, CliError> {
    match args.opt("engine").unwrap_or("mt") {
        "auto" => Ok(EnginePref::Auto),
        "mt" => Ok(EnginePref::Force(EngineChoice::Mt)),
        "st" => Ok(EnginePref::Force(EngineChoice::St)),
        "scan" => Ok(EnginePref::Force(EngineChoice::Scan)),
        other => Err(err(format!(
            "--engine must be auto|mt|st|scan, got `{other}`"
        ))),
    }
}

/// The one-line plan summary the query commands print to stderr.
fn plan_line(plan: &PhysicalPlan) -> String {
    format!(
        "plan: engine={} chosen_by={} partitions={} est_nodes={:.1} est_pages={:.1} est_cost={:.1}",
        plan.engine.as_str(),
        plan.chosen_by.as_str(),
        plan.partitions(),
        plan.est_nodes,
        plan.est_pages,
        plan.est_cost
    )
}

fn spec_from(args: &Args) -> Result<RangeSpec, CliError> {
    // Threshold validation is shared with the server's protocol parser
    // (`Threshold::parse_args`), so the two front ends cannot drift.
    let mut spec = match Threshold::parse_args(args.opt("rho"), args.opt("eps"))
        .map_err(|e| err(e.to_string()))?
    {
        Some(t) => RangeSpec::from_threshold(t),
        None => RangeSpec::correlation(0.96), // the paper's default
    };
    spec = match args.opt("policy").unwrap_or("adaptive") {
        "adaptive" => spec.with_policy(FilterPolicy::Adaptive),
        "safe" => spec.with_policy(FilterPolicy::Safe),
        "paper" => spec.with_policy(FilterPolicy::Paper),
        other => {
            return Err(err(format!(
                "--policy must be adaptive|safe|paper, got `{other}`"
            )))
        }
    };
    spec = match args.opt("mode").unwrap_or("symmetric") {
        "symmetric" => spec.with_mode(QueryMode::Symmetric),
        "data-only" => spec.with_mode(QueryMode::DataOnly),
        other => {
            return Err(err(format!(
                "--mode must be symmetric|data-only, got `{other}`"
            )))
        }
    };
    Ok(spec)
}
