//! The sequence type, its statistics, and the normal form of §3.2.

use std::fmt;
use std::ops::Index;

/// A finite real-valued time sequence.
#[derive(Clone, PartialEq, Default)]
pub struct TimeSeries(Vec<f64>);

impl TimeSeries {
    /// Wraps a vector of samples.
    pub fn new(values: Vec<f64>) -> Self {
        Self(values)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The samples.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Consumes into the sample vector.
    pub fn into_values(self) -> Vec<f64> {
        self.0
    }

    /// Arithmetic mean; 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.0.is_empty() {
            return 0.0;
        }
        self.0.iter().sum::<f64>() / self.0.len() as f64
    }

    /// Sample variance (the `n − 1` denominator); 0 when `len < 2`.
    ///
    /// The paper's normal form and its cross-correlation bridge (Eq. 9)
    /// both use the *sample* standard deviation — see
    /// [`crate::cross_correlation`].
    pub fn variance(&self) -> f64 {
        let n = self.0.len();
        if n < 2 {
            return 0.0;
        }
        let mu = self.mean();
        self.0.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / (n - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The normal form: `(x − μ)/σ` (§3.2, the transformation
    /// `(1/σ, −μ/σ)`), together with the recorded `μ` and `σ`.
    ///
    /// Returns `None` for degenerate series (fewer than 2 samples, or
    /// constant): the normal form divides by σ.
    pub fn normal_form(&self) -> Option<NormalForm> {
        let sigma = self.std();
        if sigma <= 0.0 || !sigma.is_finite() {
            return None;
        }
        let mu = self.mean();
        let values: Vec<f64> = self.0.iter().map(|v| (v - mu) / sigma).collect();
        Some(NormalForm {
            series: TimeSeries(values),
            mean: mu,
            std: sigma,
        })
    }

    /// Element-wise map into a new series.
    pub fn map(&self, f: impl FnMut(&f64) -> f64) -> Self {
        Self(self.0.iter().map(f).collect())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(v: Vec<f64>) -> Self {
        Self(v)
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self(iter.into_iter().collect())
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() <= 8 {
            write!(f, "TimeSeries({:?})", self.0)
        } else {
            write!(
                f,
                "TimeSeries(len={}, head={:?}…)",
                self.0.len(),
                &self.0[..4]
            )
        }
    }
}

/// A normalised sequence with the statistics needed to undo the
/// normalisation — the paper stores exactly this triple in the relation
/// ("its normal form along with its mean and standard deviation", §3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct NormalForm {
    /// The zero-mean, unit-sample-std sequence.
    pub series: TimeSeries,
    /// Mean of the original sequence.
    pub mean: f64,
    /// Sample standard deviation of the original sequence.
    pub std: f64,
}

impl NormalForm {
    /// Reconstructs the original sequence.
    pub fn denormalize(&self) -> TimeSeries {
        self.series.map(|v| v * self.std + self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let ts = TimeSeries::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ts.mean() - 5.0).abs() < 1e-12);
        // Σ(x−5)² = 32 → sample var = 32/7
        assert!((ts.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_degenerate() {
        assert_eq!(TimeSeries::default().mean(), 0.0);
        assert_eq!(TimeSeries::new(vec![5.0]).variance(), 0.0);
        assert!(TimeSeries::new(vec![5.0]).normal_form().is_none());
        assert!(TimeSeries::new(vec![3.0; 10]).normal_form().is_none());
    }

    #[test]
    fn normal_form_has_zero_mean_unit_std() {
        let ts = TimeSeries::new(
            (0..128)
                .map(|t| (t as f64 * 0.1).sin() * 7.0 + 3.0)
                .collect(),
        );
        let nf = ts.normal_form().unwrap();
        assert!(nf.series.mean().abs() < 1e-12);
        assert!((nf.series.std() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn denormalize_roundtrips() {
        let ts = TimeSeries::new(vec![10.0, 12.0, 10.0, 12.0, 9.0]);
        let back = ts.normal_form().unwrap().denormalize();
        for (a, b) in ts.values().iter().zip(back.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_form_is_shift_scale_invariant() {
        // Goldin–Kanellakis: normal forms are invariant to shifts/scales.
        let base = TimeSeries::new((0..64).map(|t| ((t * t) % 13) as f64).collect());
        let shifted = base.map(|v| 3.0 * v - 17.0);
        let a = base.normal_form().unwrap();
        let b = shifted.normal_form().unwrap();
        for (x, y) in a.series.values().iter().zip(b.series.values()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn debug_is_compact_for_long_series() {
        let ts = TimeSeries::new(vec![0.0; 100]);
        let s = format!("{ts:?}");
        assert!(s.contains("len=100"));
        assert!(s.len() < 100);
    }
}
