//! A small, seeded, dependency-free random number generator.
//!
//! The experiments need *reproducible* randomness, not cryptographic
//! quality: every corpus, workload and property check is keyed by a `u64`
//! seed. The generator is **xoshiro256\*\*** (Blackman & Vigna) seeded
//! through **SplitMix64**, the standard pairing — SplitMix64 turns any
//! 64-bit seed (including 0) into four well-mixed state words.
//!
//! The API mirrors the subset of the `rand` crate the workspace used, so
//! call sites read the same: `seed_from_u64`, `random_range`,
//! `random_bool`.

/// Advances a SplitMix64 state and returns the next output word.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl SeededRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (supports the `Range`/`RangeInclusive`
    /// forms over the numeric types the workspace samples).
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_unit() < p
    }

    /// A uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (unbiased enough for experiment workloads; exact bias < 2⁻⁶⁴·bound).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A range a [`SeededRng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut SeededRng) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut SeededRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + (self.end - self.start) * rng.random_unit();
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut SeededRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.random_unit()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SeededRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SeededRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u8, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SeededRng::seed_from_u64(0);
        // SplitMix64 expansion never leaves the all-zero state xoshiro
        // cannot escape.
        assert_ne!(r.s, [0; 4]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SeededRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respected() {
        let mut r = SeededRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(-2.5..7.0);
            assert!((-2.5..7.0).contains(&v));
            let w = r.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut r = SeededRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = r.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all outcomes reached: {seen:?}");
        for _ in 0..1_000 {
            let v: i32 = r.random_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = SeededRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 got {frac}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.1), "p ≥ 1 always true");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay put");
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference value from the SplitMix64 test vectors (seed 0 → first
        // output 0xE220A8397B1DCDAF).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
