//! Experiment corpora: the two data sets of §5, plus CSV I/O for anyone
//! holding the original stock data.

use crate::gen::{random_walk, Market, MarketConfig};
use crate::rng::SeededRng;
use crate::series::TimeSeries;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Which of the paper's two corpora to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusKind {
    /// Random walks with uniform ±500 steps (§5's synthetic data).
    SyntheticWalks,
    /// The synthetic stand-in for the 1068-stock close-price corpus.
    StockCloses,
}

/// A named collection of equal-length sequences.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    names: Vec<String>,
    series: Vec<TimeSeries>,
}

impl Corpus {
    /// Builds a corpus of `count` sequences of length `len`, deterministic
    /// in `seed`.
    pub fn generate(kind: CorpusKind, count: usize, len: usize, seed: u64) -> Self {
        match kind {
            CorpusKind::SyntheticWalks => {
                let mut rng = SeededRng::seed_from_u64(seed);
                let series = (0..count)
                    .map(|_| random_walk(&mut rng, len, 500.0))
                    .collect();
                let names = (0..count).map(|i| format!("W{i:05}")).collect();
                Self { names, series }
            }
            CorpusKind::StockCloses => {
                let cfg = MarketConfig {
                    stocks: count,
                    days: len,
                    ..MarketConfig::default()
                };
                let market = Market::new(cfg, seed);
                Self {
                    names: market.names(),
                    series: market.closes(),
                }
            }
        }
    }

    /// The paper's stock corpus shape: 1068 stocks × 128 days.
    pub fn paper_stock_corpus(seed: u64) -> Self {
        Self::generate(CorpusKind::StockCloses, 1068, 128, seed)
    }

    /// Wraps explicit data.
    ///
    /// # Panics
    ///
    /// Panics when names and series counts differ or lengths are ragged.
    pub fn from_parts(names: Vec<String>, series: Vec<TimeSeries>) -> Self {
        assert_eq!(names.len(), series.len(), "one name per series");
        if let Some(first) = series.first() {
            assert!(
                series.iter().all(|s| s.len() == first.len()),
                "all series must share one length"
            );
        }
        Self { names, series }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the corpus holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Length of each sequence (0 for an empty corpus).
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, TimeSeries::len)
    }

    /// The sequences.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// The names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// One sequence with its name.
    pub fn get(&self, i: usize) -> (&str, &TimeSeries) {
        (&self.names[i], &self.series[i])
    }

    /// Keeps only the first `n` sequences (for the Fig. 5 size sweep).
    pub fn truncated(&self, n: usize) -> Self {
        Self {
            names: self.names.iter().take(n).cloned().collect(),
            series: self.series.iter().take(n).cloned().collect(),
        }
    }

    /// Writes `name,v0,v1,…` lines.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for (name, s) in self.names.iter().zip(&self.series) {
            write!(out, "{name}")?;
            for v in s.values() {
                write!(out, ",{v}")?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// Reads the format written by [`Self::save_csv`]. Rows with ragged
    /// lengths or unparsable numbers are an error.
    pub fn load_csv(path: &Path) -> std::io::Result<Self> {
        let reader = BufReader::new(std::fs::File::open(path)?);
        let mut names = Vec::new();
        let mut series: Vec<TimeSeries> = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let name = fields.next().unwrap_or_default().to_string();
            let values: Result<Vec<f64>, _> = fields.map(str::parse).collect();
            let values = values.map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
            if let Some(first) = series.first() {
                if first.len() != values.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("line {}: ragged row", lineno + 1),
                    ));
                }
            }
            names.push(name);
            series.push(TimeSeries::new(values));
        }
        Ok(Self { names, series })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_corpus_shape_and_determinism() {
        let a = Corpus::generate(CorpusKind::SyntheticWalks, 50, 128, 3);
        let b = Corpus::generate(CorpusKind::SyntheticWalks, 50, 128, 3);
        assert_eq!(a.len(), 50);
        assert_eq!(a.series_len(), 128);
        assert_eq!(a.series(), b.series());
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 50, 128, 4);
        assert_ne!(a.series(), c.series(), "different seeds differ");
    }

    #[test]
    fn stock_corpus_shape() {
        let c = Corpus::generate(CorpusKind::StockCloses, 30, 64, 1);
        assert_eq!(c.len(), 30);
        assert_eq!(c.series_len(), 64);
        assert_eq!(c.get(0).0, "S0000");
    }

    #[test]
    fn truncation() {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 20, 32, 0);
        let t = c.truncated(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.series()[4], c.series()[4]);
    }

    #[test]
    fn csv_roundtrip() {
        let c = Corpus::generate(CorpusKind::StockCloses, 7, 16, 11);
        let dir = std::env::temp_dir().join("tseries_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.csv");
        c.save_csv(&path).unwrap();
        let back = Corpus::load_csv(&path).unwrap();
        assert_eq!(back.names(), c.names());
        for (a, b) in back.series().iter().zip(c.series()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("tseries_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        std::fs::write(&path, "a,1,2,3\nb,1,2\n").unwrap();
        assert!(Corpus::load_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "one name per series")]
    fn from_parts_checks_counts() {
        Corpus::from_parts(vec!["a".into()], vec![]);
    }
}
