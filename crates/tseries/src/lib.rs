#![warn(missing_docs)]
//! # tseries — time-series toolkit
//!
//! Sequences, their statistics and normal forms (§3.2 of the paper), the
//! similarity measures (Euclidean distance and cross-correlation, related by
//! Eq. 9), the time-domain operators that the paper expresses as linear
//! transformations (moving average, momentum, time shift, scaling,
//! inversion), and the data generators used by the experiments:
//!
//! * the paper's synthetic workload — random walks `x_t = x_{t−1} + z_t`,
//!   `z_t ~ U[−500, 500]` (§5);
//! * a seeded synthetic stock market standing in for the no-longer-available
//!   `ftp.ai.mit.edu` corpus of 1068 stocks × 128 daily closes (see
//!   DESIGN.md §2.1 for the substitution rationale).

mod dataset;
mod distance;
mod gen;
mod ops;
pub mod rng;
mod series;

pub use dataset::{Corpus, CorpusKind};
pub use distance::{
    city_block, cross_correlation, distance_threshold_for_correlation, euclidean, euclidean_sq,
};
pub use gen::{random_walk, spiky_pair, Market, MarketConfig};
pub use ops::{
    add_scalar, invert, momentum, momentum_circular, moving_average_circular,
    moving_average_sliding, scale, shift_right,
};
pub use series::{NormalForm, TimeSeries};

// Property tests require the external `proptest` crate; the workspace
// builds offline by default, so they sit behind a non-default feature
// (see DESIGN.md "Offline builds").
#[cfg(all(test, feature = "proptests"))]
mod proptests;
