//! Property tests for the paper's analytic claims about sequences.

use crate::*;
use proptest::prelude::*;

fn seq(max_len: usize) -> impl Strategy<Value = TimeSeries> {
    prop::collection::vec(-1e3f64..1e3, 4..=max_len).prop_map(TimeSeries::new)
}

/// Two equal-length series (avoids assume-based rejection storms).
fn seq_pair(max_len: usize) -> impl Strategy<Value = (TimeSeries, TimeSeries)> {
    (4usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n).prop_map(TimeSeries::new),
        )
    })
}

/// Three equal-length series.
fn seq_triple(max_len: usize) -> impl Strategy<Value = (TimeSeries, TimeSeries, TimeSeries)> {
    (4usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e3f64..1e3, n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n).prop_map(TimeSeries::new),
            prop::collection::vec(-1e3f64..1e3, n).prop_map(TimeSeries::new),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_form_properties(ts in seq(128)) {
        if let Some(nf) = ts.normal_form() {
            prop_assert!(nf.series.mean().abs() < 1e-9);
            prop_assert!((nf.series.std() - 1.0).abs() < 1e-9);
            let back = nf.denormalize();
            for (a, b) in ts.values().iter().zip(back.values()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn eq9_bridge_for_random_pairs((x, y) in seq_pair(64)) {
        let (Some(nx), Some(ny)) = (x.normal_form(), y.normal_form()) else {
            return Ok(());
        };
        let d2 = euclidean_sq(&nx.series, &ny.series);
        let Some(rho) = cross_correlation(&nx.series, &ny.series) else {
            return Ok(());
        };
        let n = x.len() as f64;
        let rhs = 2.0 * (n - 1.0 - n * rho);
        prop_assert!((d2 - rhs).abs() < 1e-6 * (1.0 + d2), "D²={d2} rhs={rhs}");
    }

    #[test]
    fn normal_form_minimizes_shift_distance(x in seq(48), shift in -100f64..100.0) {
        // §3.2 property 1: subtracting the mean minimises the distance over
        // scalar shifts — any other shift can only increase it.
        let Some(nx) = x.normal_form() else { return Ok(()); };
        let centered = x.map(|v| v - x.mean());
        let shifted = x.map(|v| v - (x.mean() + shift));
        let zero = TimeSeries::new(vec![0.0; x.len()]);
        prop_assert!(
            euclidean_sq(&centered, &zero) <= euclidean_sq(&shifted, &zero) + 1e-9
        );
        let _ = nx;
    }

    #[test]
    fn lemma2_scaling_preserves_order((x, y) in seq_pair(32), a in 0.1f64..10.0, b in 0.1f64..10.0) {
        // Lemma 2: for scale factors a < b, D(a·x, a·y) ≤ D(b·x, b·y).
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        let d_small = euclidean(&scale(&x, small), &scale(&y, small));
        let d_large = euclidean(&scale(&x, large), &scale(&y, large));
        prop_assert!(d_small <= d_large + 1e-9);
        // And the distance scales exactly linearly.
        let d1 = euclidean(&x, &y);
        prop_assert!((d_small - small * d1).abs() < 1e-6 * (1.0 + d_small));
    }

    #[test]
    fn circular_mv_commutes_with_shift(x in seq(64), m in 1usize..8) {
        // Both are circular convolutions, so they commute.
        prop_assume!(m <= x.len());
        let n = x.len();
        let rot = |s: &TimeSeries, k: usize| -> TimeSeries {
            (0..n).map(|i| s[(i + n - k) % n]).collect()
        };
        let a = moving_average_circular(&rot(&x, 3 % n), m);
        let b = rot(&moving_average_circular(&x, m), 3 % n);
        for (u, v) in a.values().iter().zip(b.values()) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn momentum_of_constant_is_zero(c in -100f64..100.0, n in 4usize..64) {
        let x = TimeSeries::new(vec![c; n]);
        prop_assert!(momentum(&x, 1).values().iter().all(|v| v.abs() < 1e-12));
        prop_assert!(momentum_circular(&x, 1).values().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn mv_reduces_variance(x in seq(96), m in 2usize..12) {
        // Smoothing never increases energy around the mean (variance).
        prop_assume!(m <= x.len());
        let smoothed = moving_average_circular(&x, m);
        prop_assert!(smoothed.variance() <= x.variance() + 1e-9);
    }

    #[test]
    fn triangle_inequality((x, y, z) in seq_triple(32)) {
        let (dxy, dyz, dxz) = (euclidean(&x, &y), euclidean(&y, &z), euclidean(&x, &z));
        prop_assert!(dxz <= dxy + dyz + 1e-9);
    }

    #[test]
    fn correlation_bounds((x, y) in seq_pair(48)) {
        if let Some(rho) = cross_correlation(&x, &y) {
            // With sample-std denominators, |ρ| ≤ (n−1)/n < 1.
            let n = x.len() as f64;
            prop_assert!(rho.abs() <= (n - 1.0) / n + 1e-9, "rho = {rho}");
        }
    }
}
