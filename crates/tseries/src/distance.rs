//! Similarity measures and the Euclidean ↔ cross-correlation bridge (Eq. 9).

use crate::series::TimeSeries;

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn euclidean_sq(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.values()
        .iter()
        .zip(y.values())
        .map(|(a, b)| (a - b) * (a - b))
        .sum()
}

/// Euclidean distance.
pub fn euclidean(x: &TimeSeries, y: &TimeSeries) -> f64 {
    euclidean_sq(x, y).sqrt()
}

/// City-block (L1) distance — mentioned in §1 as an alternative metric.
pub fn city_block(x: &TimeSeries, y: &TimeSeries) -> f64 {
    assert_eq!(x.len(), y.len(), "distance requires equal lengths");
    x.values()
        .iter()
        .zip(y.values())
        .map(|(a, b)| (a - b).abs())
        .sum()
}

/// The cross-correlation of footnote 5:
/// `ρ(x, y) = (μ_{x·y} − μ_x·μ_y) / (σ_x·σ_y)`,
/// with `μ_{x·y} = Σ xᵢyᵢ / n` and σ the **sample** standard deviation —
/// the same convention the normal form uses. With this pairing, Eq. 9 holds
/// exactly for normal-form inputs:
///
/// ```text
/// D²(x̂, ŷ) = 2·(n − 1 − n·ρ(x̂, ŷ))
/// ```
///
/// Returns `None` for degenerate inputs (σ = 0).
pub fn cross_correlation(x: &TimeSeries, y: &TimeSeries) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "correlation requires equal lengths");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let (sx, sy) = (x.std(), y.std());
    if sx <= 0.0 || sy <= 0.0 {
        return None;
    }
    let mean_xy = x
        .values()
        .iter()
        .zip(y.values())
        .map(|(a, b)| a * b)
        .sum::<f64>()
        / n as f64;
    Some((mean_xy - x.mean() * y.mean()) / (sx * sy))
}

/// Converts a cross-correlation threshold into the equivalent Euclidean
/// threshold for normal-form sequences of length `n` via Eq. 9:
/// `ε = √(2·(n − 1 − n·ρ))`.
///
/// ```
/// let eps = tseries::distance_threshold_for_correlation(128, 0.96);
/// assert!((eps * eps - 8.24).abs() < 1e-9);
/// ```
///
/// The paper's range-query experiments fix ρ = 0.96 and derive ε this way
/// (§5). Returns 0 when the correlation bound is so tight that the formula
/// goes negative (possible since ρ may exceed `(n−1)/n`).
pub fn distance_threshold_for_correlation(n: usize, rho: f64) -> f64 {
    let v = 2.0 * (n as f64 - 1.0 - n as f64 * rho);
    v.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec())
    }

    #[test]
    fn euclidean_basics() {
        let x = series(&[0.0, 3.0]);
        let y = series(&[4.0, 0.0]);
        assert!((euclidean(&x, &y) - 5.0).abs() < 1e-12);
        assert!((city_block(&x, &y) - 7.0).abs() < 1e-12);
        assert_eq!(euclidean_sq(&x, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        euclidean(&series(&[1.0]), &series(&[1.0, 2.0]));
    }

    #[test]
    fn correlation_of_self_near_one_after_normalization() {
        let x = series(&[1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 1.0, 0.0]);
        let nf = x.normal_form().unwrap();
        let rho = cross_correlation(&nf.series, &nf.series).unwrap();
        // Self-correlation with this convention is (n−1)/n, not exactly 1.
        let n = x.len() as f64;
        assert!((rho - (n - 1.0) / n).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_shift_scale_invariant() {
        let x = series(&[1.0, 4.0, 2.0, 7.0, 5.0, 5.0, 0.0, 3.0]);
        let y = series(&[0.0, 2.0, 1.0, 9.0, 4.0, 4.0, 1.0, 2.0]);
        let base = cross_correlation(&x, &y).unwrap();
        let x2 = x.map(|v| 5.0 * v + 100.0);
        let scaled = cross_correlation(&x2, &y).unwrap();
        assert!((base - scaled).abs() < 1e-12);
    }

    #[test]
    fn anti_correlated_series_negative() {
        let x = series(&(0..32).map(|t| t as f64).collect::<Vec<_>>());
        let y = x.map(|v| -v);
        assert!(cross_correlation(&x, &y).unwrap() < -0.9);
    }

    #[test]
    fn degenerate_correlation_is_none() {
        let x = series(&[1.0, 1.0, 1.0]);
        let y = series(&[1.0, 2.0, 3.0]);
        assert!(cross_correlation(&x, &y).is_none());
        assert!(cross_correlation(&series(&[1.0]), &series(&[2.0])).is_none());
    }

    #[test]
    fn eq9_bridge_holds_for_normal_forms() {
        let x = series(
            &(0..128)
                .map(|t| (t as f64 * 0.21).sin() * 4.0 + t as f64 * 0.01)
                .collect::<Vec<_>>(),
        );
        let y = series(
            &(0..128)
                .map(|t| (t as f64 * 0.21 + 0.4).sin() * 3.0)
                .collect::<Vec<_>>(),
        );
        let nx = x.normal_form().unwrap().series;
        let ny = y.normal_form().unwrap().series;
        let d2 = euclidean_sq(&nx, &ny);
        let rho = cross_correlation(&nx, &ny).unwrap();
        let n = 128.0;
        assert!(
            (d2 - 2.0 * (n - 1.0 - n * rho)).abs() < 1e-8,
            "Eq. 9 violated: D²={d2}, rhs={}",
            2.0 * (n - 1.0 - n * rho)
        );
    }

    #[test]
    fn threshold_conversion_matches_paper_setup() {
        // ρ = 0.96, n = 128 → ε² = 2(127 − 122.88) = 8.24.
        let eps = distance_threshold_for_correlation(128, 0.96);
        assert!((eps * eps - 8.24).abs() < 1e-9);
        // Impossible ρ clamps to zero.
        assert_eq!(distance_threshold_for_correlation(128, 1.0), 0.0);
    }
}
