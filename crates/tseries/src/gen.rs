//! Data generators.
//!
//! * [`random_walk`] — the paper's synthetic workload, verbatim:
//!   `x_t = x_{t−1} + z_t` with `z_t ~ U[−500, 500]` (§5).
//! * [`Market`] — a seeded synthetic stock market that stands in for the
//!   unavailable `ftp.ai.mit.edu/pub/stocks/results` corpus. Closing prices
//!   follow sector-correlated geometric random walks with occasional
//!   one-day spikes; this gives the low-frequency-dominated spectra that
//!   make the paper's DFT index selective, plus the spike-alignment
//!   phenomena of Example 1.2.
//! * [`spiky_pair`] — a deterministic PCG/PCL-like pair whose momenta align
//!   under a 2-day shift (Example 1.2's shape).

use crate::rng::SeededRng;
use crate::series::TimeSeries;

/// The paper's synthetic sequence: a uniform-step random walk.
pub fn random_walk(rng: &mut SeededRng, len: usize, step: f64) -> TimeSeries {
    let mut x = 0.0;
    (0..len)
        .map(|_| {
            x += rng.random_range(-step..=step);
            x
        })
        .collect()
}

/// Tuning knobs for the synthetic market.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Number of stocks.
    pub stocks: usize,
    /// Days per stock.
    pub days: usize,
    /// Number of sectors sharing a common factor.
    pub sectors: usize,
    /// Weight of the sector factor vs idiosyncratic noise, in `[0, 1]`.
    pub sector_weight: f64,
    /// Daily volatility of log-price moves.
    pub volatility: f64,
    /// Probability of a one-day spike on any given day.
    pub spike_prob: f64,
    /// Relative amplitude of *daily measurement noise* applied to the
    /// price level (multiplicative, uniform in `±daily_noise`). Unlike the
    /// volatility (which accumulates), this noise is white — it models
    /// volume-like series (Example 1.1's COMPV/NYV) whose day-to-day
    /// jitter hides a shared trend that a short moving average recovers.
    pub daily_noise: f64,
}

impl Default for MarketConfig {
    /// The shape of the paper's real corpus: 1068 stocks × 128 days.
    fn default() -> Self {
        Self {
            stocks: 1068,
            days: 128,
            sectors: 12,
            sector_weight: 0.5,
            volatility: 0.02,
            spike_prob: 0.01,
            daily_noise: 0.0,
        }
    }
}

/// A deterministic synthetic stock market.
pub struct Market {
    config: MarketConfig,
    seed: u64,
}

impl Market {
    /// Creates a market with the given configuration and seed.
    pub fn new(config: MarketConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Generates every stock's daily closing-price series.
    pub fn closes(&self) -> Vec<TimeSeries> {
        let cfg = &self.config;
        let mut rng = SeededRng::seed_from_u64(self.seed);

        // Shared per-sector daily log-return factors.
        let sector_factors: Vec<Vec<f64>> = (0..cfg.sectors.max(1))
            .map(|_| (0..cfg.days).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();

        (0..cfg.stocks)
            .map(|s| {
                let sector = &sector_factors[s % sector_factors.len()];
                let base = rng.random_range(10.0_f64..200.0);
                let drift = rng.random_range(-0.001..0.001);
                let mut log_price = base.ln();
                (0..cfg.days)
                    .map(|d| {
                        let common = sector[d] * cfg.sector_weight;
                        let own = rng.random_range(-1.0_f64..1.0) * (1.0 - cfg.sector_weight);
                        log_price += drift + cfg.volatility * (common + own);
                        let mut price = log_price.exp();
                        if rng.random_bool(cfg.spike_prob) {
                            // One-day spike (news shock / recording glitch).
                            price *= rng.random_range(1.1..1.5);
                        }
                        if cfg.daily_noise > 0.0 {
                            price *= 1.0 + rng.random_range(-cfg.daily_noise..cfg.daily_noise);
                        }
                        price
                    })
                    .collect()
            })
            .collect()
    }

    /// Synthetic names (`S0000`, `S0001`, …) for reporting.
    pub fn names(&self) -> Vec<String> {
        (0..self.config.stocks)
            .map(|i| format!("S{i:04}"))
            .collect()
    }
}

/// A deterministic pair of series shaped like Example 1.2's PCG/PCL: both
/// carry a one-day spike, offset by `offset` days; their momenta are far
/// apart until one is shifted by `offset`.
pub fn spiky_pair(len: usize, spike_at: usize, offset: usize) -> (TimeSeries, TimeSeries) {
    assert!(
        spike_at + offset + 1 < len,
        "spike must fit inside both series"
    );
    let base = |t: usize| (t as f64 * 0.11).sin() * 1.5 + (t as f64 * 0.023).cos();
    let mut a: Vec<f64> = (0..len).map(base).collect();
    let mut b: Vec<f64> = (0..len).map(|t| base(t) * 0.9 + 0.2).collect();
    a[spike_at] += 6.0;
    b[spike_at + offset] += 6.0;
    (TimeSeries::new(a), TimeSeries::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;
    use crate::ops::{momentum, shift_right};

    #[test]
    fn random_walk_is_reproducible_and_sized() {
        let mut r1 = SeededRng::seed_from_u64(9);
        let mut r2 = SeededRng::seed_from_u64(9);
        let a = random_walk(&mut r1, 128, 500.0);
        let b = random_walk(&mut r2, 128, 500.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 128);
        // Steps bounded by ±500.
        for w in a.values().windows(2) {
            assert!((w[1] - w[0]).abs() <= 500.0);
        }
    }

    #[test]
    fn market_shape_and_determinism() {
        let cfg = MarketConfig {
            stocks: 20,
            days: 64,
            ..MarketConfig::default()
        };
        let m1 = Market::new(cfg.clone(), 7).closes();
        let m2 = Market::new(cfg, 7).closes();
        assert_eq!(m1.len(), 20);
        assert!(m1.iter().all(|s| s.len() == 64));
        assert_eq!(m1, m2);
        // Prices stay positive.
        assert!(m1.iter().all(|s| s.values().iter().all(|v| *v > 0.0)));
    }

    #[test]
    fn market_sector_mates_correlate_more() {
        let cfg = MarketConfig {
            stocks: 24,
            days: 128,
            sectors: 2,
            sector_weight: 0.9,
            spike_prob: 0.0,
            ..MarketConfig::default()
        };
        let closes = Market::new(cfg, 42).closes();
        // Stocks 0 and 2 share a sector; 0 and 1 do not. Sector structure
        // lives in the daily *returns* (price levels also accumulate the
        // per-stock drift), so compare momentum correlations.
        let rho = |a: &TimeSeries, b: &TimeSeries| {
            crate::distance::cross_correlation(&momentum(a, 1), &momentum(b, 1)).unwrap()
        };
        let same = rho(&closes[0], &closes[2]);
        let diff = rho(&closes[0], &closes[1]);
        assert!(
            same > diff,
            "sector mates should correlate more: same={same:.3} diff={diff:.3}"
        );
    }

    #[test]
    fn default_config_matches_paper_corpus_shape() {
        let cfg = MarketConfig::default();
        assert_eq!((cfg.stocks, cfg.days), (1068, 128));
    }

    #[test]
    fn spiky_pair_momenta_align_under_shift() {
        // The Example 1.2 phenomenon: shifting the momentum brings the
        // spikes into alignment and slashes the distance.
        let (a, b) = spiky_pair(128, 60, 2);
        let ma = momentum(&a, 1);
        let mb = momentum(&b, 1);
        let before = euclidean(&ma, &mb);
        let after = euclidean(&shift_right(&ma, 2), &mb);
        assert!(
            after < before / 2.0,
            "shift must at least halve the distance: before={before:.2} after={after:.2}"
        );
    }

    #[test]
    fn daily_noise_is_smoothable() {
        // With heavy daily noise over a shared trend, normalized closes of
        // sector mates are far apart raw but close after smoothing —
        // the Example 1.1 phenomenon.
        let cfg = MarketConfig {
            stocks: 4,
            days: 128,
            sectors: 1,
            sector_weight: 1.0,
            volatility: 0.03,
            spike_prob: 0.0,
            daily_noise: 0.10,
        };
        let closes = Market::new(cfg, 8).closes();
        let a = closes[0].normal_form().unwrap().series;
        let b = closes[1].normal_form().unwrap().series;
        let raw = euclidean(&a, &b);
        let smoothed = euclidean(
            &crate::ops::moving_average_circular(&a, 9),
            &crate::ops::moving_average_circular(&b, 9),
        );
        assert!(
            smoothed < raw / 2.0,
            "9-day MA should slash the distance: raw={raw:.2} smoothed={smoothed:.2}"
        );
    }

    #[test]
    fn names_align_with_stocks() {
        let m = Market::new(
            MarketConfig {
                stocks: 3,
                days: 8,
                ..Default::default()
            },
            0,
        );
        assert_eq!(m.names(), vec!["S0000", "S0001", "S0002"]);
    }
}
