//! Real-input FFT: an `n`-point real transform computed via an
//! `n/2`-point complex FFT plus an O(n) untangling pass — the classic
//! two-for-one trick. Feature extraction transforms a real sequence on
//! every record fetch, so this roughly halves the engine's hottest
//! substrate cost.

use crate::fft::{fft, is_power_of_two, radix2_in_place, Direction};
use crate::Complex64;

/// Forward unitary DFT of a real signal; returns the full `n`-coefficient
/// (conjugate-symmetric) spectrum. Even lengths use the two-for-one
/// algorithm; odd lengths fall back to the general complex path.
///
/// ```
/// let x: Vec<f64> = (0..8).map(|t| t as f64).collect();
/// let spectrum = tsfft::rfft(&x);
/// // Parseval: unitary transform preserves energy.
/// let e_time: f64 = x.iter().map(|v| v * v).sum();
/// let e_freq: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum();
/// assert!((e_time - e_freq).abs() < 1e-9);
/// ```
pub fn rfft(x: &[f64]) -> Vec<Complex64> {
    let n = x.len();
    if n < 2 || !n.is_multiple_of(2) {
        return fft(&x
            .iter()
            .copied()
            .map(Complex64::from_real)
            .collect::<Vec<_>>());
    }
    let m = n / 2;

    // Pack pairs into a complex signal z[k] = x[2k] + j·x[2k+1].
    let mut z: Vec<Complex64> = x
        .chunks_exact(2)
        .map(|p| Complex64::new(p[0], p[1]))
        .collect();

    // Unnormalised half-length transform.
    let zhat = if is_power_of_two(m) {
        radix2_in_place(&mut z, Direction::Forward);
        z
    } else {
        // `fft` is unitary; undo its 1/√m factor.
        let mut out = fft(&z);
        let scale = (m as f64).sqrt();
        for v in &mut out {
            *v = v.scale(scale);
        }
        out
    };

    // Untangle: for k = 0..m,
    //   E[k] = (Z[k] + conj(Z[m−k]))/2        (DFT of even samples)
    //   O[k] = (Z[k] − conj(Z[m−k]))/(2j)     (DFT of odd samples)
    //   X[k] = E[k] + e^{−j2πk/n}·O[k]
    // then X[m] = E[0] − O[0] and X[n−k] = conj(X[k]).
    let scale = 1.0 / (n as f64).sqrt(); // unitary output
    let mut out = vec![Complex64::ZERO; n];
    let step = -2.0 * std::f64::consts::PI / n as f64;
    for k in 0..m {
        let zk = zhat[k];
        let zmk = zhat[(m - k) % m].conj();
        let e = (zk + zmk).scale(0.5);
        let o = (zk - zmk) * Complex64::new(0.0, -0.5); // divide by 2j
        let xk = e + Complex64::cis(step * k as f64) * o;
        out[k] = xk.scale(scale);
        if k > 0 {
            out[n - k] = out[k].conj();
        }
    }
    // k = m (the Nyquist bin): E[0] − O[0].
    let e0 = (zhat[0] + zhat[0].conj()).scale(0.5);
    let o0 = (zhat[0] - zhat[0].conj()) * Complex64::new(0.0, -0.5);
    out[m] = (e0 - o0).scale(scale);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn check(x: &[f64], eps: f64) {
        let fast = rfft(x);
        let slow = dft_naive(
            &x.iter()
                .copied()
                .map(Complex64::from_real)
                .collect::<Vec<_>>(),
        );
        assert_eq!(fast.len(), slow.len());
        for (f, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((*a - *b).abs() < eps, "n={} bin={f}: {a} vs {b}", x.len());
        }
    }

    #[test]
    fn matches_naive_on_even_lengths() {
        for n in [2usize, 4, 6, 8, 10, 16, 64, 128, 130] {
            let x: Vec<f64> = (0..n)
                .map(|t| (t as f64 * 0.7).sin() * 3.0 + (t as f64 * 0.13).cos())
                .collect();
            check(&x, 1e-9);
        }
    }

    #[test]
    fn matches_naive_on_odd_lengths_fallback() {
        for n in [1usize, 3, 7, localize(), 127] {
            let x: Vec<f64> = (0..n).map(|t| ((t * t) % 11) as f64 - 5.0).collect();
            check(&x, 1e-8);
        }
    }

    // Keep an odd constant out of the array literal so clippy's
    // approx-constant lint never misfires on test data.
    fn localize() -> usize {
        31
    }

    #[test]
    fn spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..128).map(|t| (t as f64 * 0.21).sin() * 5.0).collect();
        let y = rfft(&x);
        for f in 1..128 {
            assert!((y[f] - y[128 - f].conj()).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..64).map(|t| (t as f64 - 31.5) * 0.4).collect();
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = rfft(&x).iter().map(|c| c.norm_sqr()).sum();
        assert!((time - freq).abs() < 1e-7 * (1.0 + time));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(rfft(&[]).is_empty());
        let y = rfft(&[5.0]);
        assert_eq!(y.len(), 1);
        assert!((y[0] - Complex64::from_real(5.0)).abs() < 1e-12);
    }
}
