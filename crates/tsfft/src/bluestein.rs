//! Bluestein's chirp-z algorithm: O(n log n) DFT for *any* length.
//!
//! Rewrites `t·f = (t² + f² − (f−t)²)/2` so the DFT becomes a circular
//! convolution of chirp-modulated sequences, which we evaluate with the
//! radix-2 engine at a padded power-of-two length `m ≥ 2n−1`.
//!
//! Time sequences in the paper's experiments are length-128 (a power of
//! two), but the library accepts arbitrary lengths — e.g. the 127-point
//! momentum of a 128-point series, or odd-length moving-average masks —
//! and those route through here.

use crate::fft::{is_power_of_two, radix2_in_place, Direction};
use crate::Complex64;

/// Forward unitary DFT of arbitrary length via the chirp-z transform.
pub fn bluestein_fft(x: &[Complex64]) -> Vec<Complex64> {
    bluestein_fft_dir(x, Direction::Forward)
}

pub(crate) fn bluestein_fft_dir(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }

    // Chirp a_t = e^{sign·jπ t²/n}. Computing t² mod 2n keeps the phase
    // argument bounded, avoiding precision loss for long inputs.
    let sign = dir.sign();
    let base = sign * std::f64::consts::PI / n as f64;
    let chirp: Vec<Complex64> = (0..n)
        .map(|t| Complex64::cis(base * ((t * t) % (2 * n)) as f64))
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    debug_assert!(is_power_of_two(m));

    // A = x ⊙ chirp, zero-padded to m.
    let mut a = vec![Complex64::ZERO; m];
    for (t, (&xt, &ct)) in x.iter().zip(&chirp).enumerate() {
        a[t] = xt * ct;
    }

    // B = conj(chirp) wrapped circularly so B[m−t] = B[t].
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for t in 1..n {
        let c = chirp[t].conj();
        b[t] = c;
        b[m - t] = c;
    }

    // Circular convolution via the convolution theorem (Eq. 5).
    radix2_in_place(&mut a, Direction::Forward);
    radix2_in_place(&mut b, Direction::Forward);
    for (av, bv) in a.iter_mut().zip(&b) {
        *av *= *bv;
    }
    radix2_in_place(&mut a, Direction::Inverse);

    // The unnormalised radix-2 forward/backward pair multiplies by m;
    // fold that and the unitary 1/√n factor into one scale.
    let scale = 1.0 / (m as f64) / (n as f64).sqrt();
    (0..n).map(|f| a[f] * chirp[f] * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dft_naive, idft_naive, ifft};

    #[test]
    fn matches_naive_for_many_lengths() {
        for n in 2..=40 {
            let x: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64 * 1.3).sin() + 0.2, (t as f64 * 0.9).cos()))
                .collect();
            let fast = bluestein_fft(&x);
            let slow = dft_naive(&x);
            for (f, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).abs() < 1e-9, "n={n} bin={f}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_naive_on_prime_lengths() {
        for &n in &[97usize, 101, 127, 131] {
            let x: Vec<Complex64> = (0..n)
                .map(|t| Complex64::from_real(((t * t) % 17) as f64 - 8.0))
                .collect();
            let fast = bluestein_fft(&x);
            let slow = dft_naive(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn inverse_direction_matches_naive_inverse() {
        let n = 11;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new(t as f64, -(t as f64) * 0.5))
            .collect();
        let fast = bluestein_fft_dir(&x, Direction::Inverse);
        let slow = idft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrips_through_public_api() {
        let n = 55;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::from_real((t % 7) as f64))
            .collect();
        let back = ifft(&bluestein_fft(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
