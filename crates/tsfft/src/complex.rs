//! Minimal complex arithmetic.
//!
//! The engine needs only a handful of operations (add/sub/mul, conjugate,
//! polar conversions), so we implement them directly rather than pulling in
//! an external numerics crate; this keeps the whole frequency-domain path
//! auditable and dependency-free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `j` (the paper writes `j = √−1`).
    pub const J: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{jθ}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The phase angle in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `(magnitude, angle)` — the representation the index stores.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse; `None` when `self` is zero.
    #[inline]
    pub fn recip(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 {
            None
        } else {
            Some(Self {
                re: self.re / d,
                im: -self.im / d,
            })
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_basics() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2j)(3-j) = 3 - j + 6j - 2j² = 5 + 5j
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn division_and_recip() {
        let a = Complex64::new(5.0, 5.0);
        let b = Complex64::new(3.0, -1.0);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < EPS);

        let r = b.recip().unwrap();
        assert!((r * b - Complex64::ONE).abs() < EPS);
        assert!(Complex64::ZERO.recip().is_none());
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-1.5, 2.5);
        let (r, th) = z.to_polar();
        let back = Complex64::from_polar(r, th);
        assert!((back - z).abs() < EPS);
        assert!((z.abs() - (1.5f64 * 1.5 + 2.5 * 2.5).sqrt()).abs() < EPS);
    }

    #[test]
    fn unit_circle_and_conj() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 1.0).abs() < EPS);
        assert!((z * z.conj() - Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!((Complex64::J * Complex64::J - Complex64::new(-1.0, 0.0)).abs() < EPS);
    }

    #[test]
    fn sum_folds() {
        let s: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2j");
    }
}
