#![warn(missing_docs)]
//! # tsfft — Discrete Fourier Transform substrate
//!
//! A from-scratch implementation of the Discrete Fourier Transform used by
//! the similarity-query engine (`simquery`). The ICDE '99 paper maps time
//! sequences into the frequency domain (§2.2) and expresses similarity
//! transformations as linear operations on the Fourier coefficients; this
//! crate provides that machinery:
//!
//! * [`Complex64`] — minimal complex arithmetic with polar conversions
//!   (the index stores coefficients as magnitude/phase pairs);
//! * [`fft`]/[`ifft`] — O(n log n) transforms for any length (radix-2
//!   Cooley–Tukey for powers of two, Bluestein's chirp-z otherwise);
//! * [`dft_naive`] — the O(n²) textbook definition (Eq. 1 of the paper),
//!   kept as the oracle for property tests;
//! * [`RealDft`] — conveniences for real-valued sequences: the conjugate
//!   symmetry `X[n−f] = conj(X[f])` (Eq. 6) that the paper exploits to halve
//!   the effective search radius, energy (Eq. 2) and Parseval's relation
//!   (Eq. 7).
//!
//! ## Normalisation convention
//!
//! The paper defines the DFT with a `1/√n` factor in the *forward* direction
//! (Eq. 1), which makes the transform unitary together with a `1/√n` inverse.
//! We follow that convention so that Parseval's relation holds with equal
//! energies (`E(x) = E(X)`) and the Euclidean distance is preserved exactly
//! between domains (Eq. 8) — that preservation is what makes the truncated-
//! coefficient index lower-bound the true distance.

mod bluestein;
mod complex;
mod dft;
mod fft;
mod real;
mod rfft;
mod spectrum;

pub use bluestein::bluestein_fft;
pub use complex::Complex64;
pub use dft::{dft_naive, idft_naive};
pub use fft::{fft, fft_in_place, ifft, is_power_of_two};
pub use real::{energy, energy_complex, RealDft};
pub use rfft::rfft;
pub use spectrum::{convolve_circular, cross_spectrum, Spectrum};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
