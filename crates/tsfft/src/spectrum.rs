//! Frequency-domain utilities: circular convolution (Eq. 3 + Eq. 5) and the
//! interleaved polar encoding of §3.1.1.
//!
//! §3.1.1 of the paper maps a complex spectrum `X` to a real vector `X'`
//! with `X_i = X'_{2i} · e^{j·X'_{2i+1}}` — magnitudes at even slots, phase
//! angles at odd slots. Under that encoding, multiplying spectra becomes a
//! *linear* operation (multiply magnitudes, add angles), which is what lets
//! convolution-style operators (moving average, momentum, shift) be
//! expressed as `(a, b)` transformation pairs.

use crate::{fft, ifft, Complex64};

/// Circular convolution via the convolution theorem:
/// `conv(x, y)_i = Σ_k x_k · y_{(i−k) mod n}` (Eq. 3).
///
/// Note the unitary DFT convention: `DFT(conv(x,y)) = √n · X ⊙ Y`, so we
/// rescale accordingly.
///
/// # Panics
///
/// Panics when the inputs have different lengths.
pub fn convolve_circular(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "circular convolution needs equal lengths");
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let cx: Vec<Complex64> = x.iter().copied().map(Complex64::from_real).collect();
    let cy: Vec<Complex64> = y.iter().copied().map(Complex64::from_real).collect();
    let fx = fft(&cx);
    let fy = fft(&cy);
    let scale = (n as f64).sqrt();
    let prod: Vec<Complex64> = fx
        .iter()
        .zip(&fy)
        .map(|(a, b)| (*a * *b).scale(scale))
        .collect();
    ifft(&prod).into_iter().map(|c| c.re).collect()
}

/// Element-wise `X ⊙ conj(Y)` — the cross-spectrum, whose inverse transform
/// is the circular cross-correlation sequence.
pub fn cross_spectrum(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(x.len(), y.len(), "cross spectrum needs equal lengths");
    x.iter().zip(y).map(|(a, b)| *a * b.conj()).collect()
}

/// A complex spectrum together with polar-encoding helpers.
#[derive(Clone, Debug, Default)]
pub struct Spectrum(pub Vec<Complex64>);

impl Spectrum {
    /// Forward-transforms a real sequence.
    pub fn of(x: &[f64]) -> Self {
        Self(fft(&x
            .iter()
            .copied()
            .map(Complex64::from_real)
            .collect::<Vec<_>>()))
    }

    /// Number of coefficients.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Interleaved polar encoding `[r₀, θ₀, r₁, θ₁, …]` (§3.1.1's `X'`).
    pub fn to_interleaved_polar(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.0.len() * 2);
        for c in &self.0 {
            let (r, th) = c.to_polar();
            out.push(r);
            out.push(th);
        }
        out
    }

    /// Rebuilds a spectrum from the interleaved polar encoding.
    ///
    /// # Panics
    ///
    /// Panics when `v.len()` is odd.
    pub fn from_interleaved_polar(v: &[f64]) -> Self {
        assert!(
            v.len().is_multiple_of(2),
            "interleaved polar vector must have even length"
        );
        Self(
            v.chunks_exact(2)
                .map(|p| Complex64::from_polar(p[0], p[1]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_matches_direct_sum() {
        let x = [1.0, 2.0, 3.0, 4.0, 0.0, -1.0];
        let y = [0.5, 0.0, -0.25, 0.0, 0.0, 1.0];
        let n = x.len();
        let via_fft = convolve_circular(&x, &y);
        for i in 0..n {
            let direct: f64 = (0..n).map(|k| x[k] * y[(i + n - k) % n]).sum();
            assert!(
                (via_fft[i] - direct).abs() < 1e-9,
                "i={i}: {} vs {direct}",
                via_fft[i]
            );
        }
    }

    #[test]
    fn convolving_with_delta_is_identity() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut delta = [0.0; 5];
        delta[0] = 1.0;
        let out = convolve_circular(&x, &delta);
        for (a, b) in x.iter().zip(&out) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn shifted_delta_rotates() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut d1 = [0.0; 5];
        d1[1] = 1.0;
        let out = convolve_circular(&x, &d1);
        // conv with δ₁ rotates right by one
        assert!((out[0] - 5.0).abs() < 1e-10);
        assert!((out[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn polar_interleave_roundtrip() {
        let s = Spectrum::of(&[1.0, -2.0, 0.5, 4.0, 4.0, -3.0, 2.0, 2.0]);
        let v = s.to_interleaved_polar();
        assert_eq!(v.len(), 16);
        let back = Spectrum::from_interleaved_polar(&v);
        for (a, b) in s.0.iter().zip(&back.0) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_spectrum_of_self_is_power() {
        let s = Spectrum::of(&[1.0, 2.0, 3.0, 4.0]);
        let cs = cross_spectrum(&s.0, &s.0);
        for (c, orig) in cs.iter().zip(&s.0) {
            assert!((c.re - orig.norm_sqr()).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }
}
