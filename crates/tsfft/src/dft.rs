//! The textbook O(n²) DFT — Eq. 1 of the paper, verbatim.
//!
//! This is the oracle implementation: slow, obviously correct, and used by
//! property tests to validate the fast paths ([`crate::fft`],
//! [`crate::bluestein_fft`]).

use crate::Complex64;

/// Computes the DFT by direct evaluation of Eq. 1:
///
/// ```text
/// X_f = (1/√n) · Σ_{t=0}^{n−1} x_t · e^{−j2πtf/n}
/// ```
///
/// Accepts any length, including 0 and 1.
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|f| {
            let acc: Complex64 = x
                .iter()
                .enumerate()
                // `(t·f) mod n` keeps the phase argument small for long
                // inputs, which matters for accuracy when n·f is large.
                .map(|(t, &xt)| xt * Complex64::cis(step * ((t * f) % n) as f64))
                .sum();
            acc.scale(scale)
        })
        .collect()
}

/// Inverse of [`dft_naive`]; also unitary (`1/√n` factor).
pub fn idft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let step = 2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|t| {
            let acc: Complex64 = x
                .iter()
                .enumerate()
                .map(|(f, &xf)| xf * Complex64::cis(step * ((t * f) % n) as f64))
                .sum();
            acc.scale(scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reals(v: &[f64]) -> Vec<Complex64> {
        v.iter().copied().map(Complex64::from_real).collect()
    }

    #[test]
    fn empty_and_singleton() {
        assert!(dft_naive(&[]).is_empty());
        let x = reals(&[3.5]);
        let y = dft_naive(&x);
        assert_eq!(y.len(), 1);
        assert!((y[0] - x[0]).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = reals(&[2.0; 8]);
        let y = dft_naive(&x);
        // DC bin = (1/√8)·Σx = 16/√8 = 2√8
        assert!((y[0].re - 2.0 * 8f64.sqrt()).abs() < 1e-12);
        for (f, v) in y.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-12, "bin {f} should be zero, was {v}");
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 16;
        let k = 3;
        let x: Vec<Complex64> = (0..n)
            .map(|t| {
                Complex64::from_real(
                    (2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64).cos(),
                )
            })
            .collect();
        let y = dft_naive(&x);
        // cos splits evenly into bins k and n−k, each of magnitude (n/2)/√n.
        let expect = n as f64 / 2.0 / (n as f64).sqrt();
        assert!((y[k].abs() - expect).abs() < 1e-9);
        assert!((y[n - k].abs() - expect).abs() < 1e-9);
        for (f, v) in y.iter().enumerate() {
            if f != k && f != n - k {
                assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x = reals(&[1.0, -2.0, 3.0, 0.5, -0.25, 7.0, 2.0]);
        let back = idft_naive(&dft_naive(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_is_flat() {
        let mut x = reals(&[0.0; 9]);
        x[0] = Complex64::from_real(1.0);
        let y = dft_naive(&x);
        for v in &y {
            assert!((v.abs() - 1.0 / 3.0).abs() < 1e-12); // 1/√9
        }
    }
}
