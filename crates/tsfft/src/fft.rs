//! Iterative radix-2 Cooley–Tukey FFT with a Bluestein fallback.
//!
//! [`fft`]/[`ifft`] are the public entry points and accept any length;
//! power-of-two inputs take the in-place radix-2 path, everything else is
//! routed through [`crate::bluestein_fft`]. Both use the unitary (`1/√n`)
//! normalisation of the paper so Parseval's relation holds exactly.

use crate::bluestein::bluestein_fft_dir;
use crate::Complex64;

/// Returns true when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Forward unitary DFT of an arbitrary-length signal.
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    transform(x, Direction::Forward)
}

/// Inverse unitary DFT of an arbitrary-length signal.
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    transform(x, Direction::Inverse)
}

/// Transform direction; controls the twiddle sign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    #[inline]
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    if is_power_of_two(n) {
        let mut buf = x.to_vec();
        radix2_in_place(&mut buf, dir);
        let scale = 1.0 / (n as f64).sqrt();
        for v in &mut buf {
            *v = v.scale(scale);
        }
        buf
    } else {
        bluestein_fft_dir(x, dir)
    }
}

/// In-place unitary FFT for power-of-two lengths.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex64]) {
    assert!(
        is_power_of_two(buf.len()),
        "fft_in_place requires a power-of-two length, got {}",
        buf.len()
    );
    radix2_in_place(buf, Direction::Forward);
    let scale = 1.0 / (buf.len() as f64).sqrt();
    for v in buf.iter_mut() {
        *v = v.scale(scale);
    }
}

/// Unnormalised iterative radix-2 butterfly network.
pub(crate) fn radix2_in_place(buf: &mut [Complex64], dir: Direction) {
    let n = buf.len();
    debug_assert!(is_power_of_two(n));
    if n <= 1 {
        return;
    }

    bit_reverse_permute(buf);

    let sign = dir.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            let mut w = Complex64::ONE;
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Reorders `buf` so that element `i` moves to position `reverse_bits(i)`.
fn bit_reverse_permute(buf: &mut [Complex64]) {
    let n = buf.len();
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            buf.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn close(a: &[Complex64], b: &[Complex64], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < eps, "bin {i}: {x} vs {y}");
        }
    }

    fn reals(v: &[f64]) -> Vec<Complex64> {
        v.iter().copied().map(Complex64::from_real).collect()
    }

    #[test]
    fn matches_naive_on_powers_of_two() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let x: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64).sin(), (t as f64 * 0.3).cos()))
                .collect();
            close(&fft(&x), &dft_naive(&x), 1e-9);
        }
    }

    #[test]
    fn matches_naive_on_odd_lengths() {
        for &n in &[3usize, 5, 7, 12, 100, 127] {
            let x: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new((t as f64).cos(), -(t as f64) * 0.01))
                .collect();
            close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn roundtrip_all_small_lengths() {
        for n in 0..=33 {
            let x: Vec<Complex64> = (0..n)
                .map(|t| Complex64::new(t as f64 * 0.7 - 3.0, (t as f64).sqrt()))
                .collect();
            let back = ifft(&fft(&x));
            close(&x, &back, 1e-9);
        }
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let x = reals(&[5.0, -1.0, 2.5, 0.0, 9.0, 9.0, -3.0, 1.0]);
        let mut buf = x.clone();
        fft_in_place(&mut buf);
        close(&buf, &fft(&x), 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn in_place_rejects_non_power_of_two() {
        let mut buf = reals(&[1.0, 2.0, 3.0]);
        fft_in_place(&mut buf);
    }

    #[test]
    fn length_one_is_identity() {
        let x = reals(&[42.0]);
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    fn power_of_two_predicate() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(128));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(96));
    }

    #[test]
    fn linearity_holds() {
        // Eq. 4: DFT(a·x + b·y) = a·X + b·Y
        let x = reals(&[1.0, 4.0, -2.0, 0.5, 3.0, 3.0, 0.0, -1.0]);
        let y = reals(&[2.0, -1.0, 0.0, 0.0, 5.0, 1.0, 1.0, 2.0]);
        let (a, b) = (2.5, -0.75);
        let combo: Vec<Complex64> = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| xi.scale(a) + yi.scale(b))
            .collect();
        let lhs = fft(&combo);
        let rx = fft(&x);
        let ry = fft(&y);
        let rhs: Vec<Complex64> = rx
            .iter()
            .zip(&ry)
            .map(|(xi, yi)| xi.scale(a) + yi.scale(b))
            .collect();
        close(&lhs, &rhs, 1e-10);
    }
}
