//! Property-based tests over the whole transform stack.
//!
//! These pin the DFT properties the paper's algorithms rely on (§2.2):
//! linearity (Eq. 4), convolution–multiplication (Eq. 5), conjugate symmetry
//! (Eq. 6), Parseval (Eq. 7) and distance preservation (Eq. 8), for *all*
//! lengths — not just the power-of-two fast path.

use crate::*;
use proptest::prelude::*;

fn real_seq(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3f64, 1..=max_len)
}

fn complex_seq(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1e3f64..1e3f64, -1e3f64..1e3f64), 1..=max_len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

/// Relative-ish tolerance: absolute floor plus a term scaling with magnitude.
fn close(a: Complex64, b: Complex64, scale: f64) -> bool {
    (a - b).abs() <= 1e-7 + 1e-10 * scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_matches_naive_dft(x in complex_seq(64)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        let scale = x.iter().map(|c| c.abs()).sum::<f64>();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(close(*a, *b, scale), "{a} vs {b}");
        }
    }

    #[test]
    fn fft_roundtrip_is_identity(x in complex_seq(128)) {
        let back = ifft(&fft(&x));
        let scale = x.iter().map(|c| c.abs()).sum::<f64>();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!(close(*a, *b, scale));
        }
    }

    #[test]
    fn parseval_energy_preserved(x in real_seq(128)) {
        let d = RealDft::forward(&x);
        let et = energy(&x);
        prop_assert!((et - d.energy()).abs() <= 1e-6 + 1e-9 * et);
    }

    #[test]
    fn conjugate_symmetry_for_real_input(x in real_seq(96)) {
        let d = RealDft::forward(&x);
        prop_assert!(d.is_conjugate_symmetric(1e-6));
    }

    #[test]
    fn distance_preserved_between_domains(
        x in real_seq(64),
        noise in prop::collection::vec(-10f64..10f64, 64),
    ) {
        let y: Vec<f64> = x.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let dx = RealDft::forward(&x);
        let dy = RealDft::forward(&y);
        let dt: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!((dt - dx.distance_sq(&dy)).abs() <= 1e-6 + 1e-9 * dt);
    }

    #[test]
    fn symmetry_lower_bound_never_exceeds_distance(
        x in real_seq(64),
        noise in prop::collection::vec(-10f64..10f64, 64),
    ) {
        let y: Vec<f64> = x.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let dx = RealDft::forward(&x);
        let dy = RealDft::forward(&y);
        let full = dx.distance_sq(&dy);
        let kmax = (x.len() - 1) / 2;
        for k in 1..=kmax.min(4) {
            prop_assert!(dx.distance_lower_bound_sq(&dy, k) <= full + 1e-6 + 1e-9 * full);
        }
    }

    #[test]
    fn linearity(x in complex_seq(48), a in -5f64..5.0, b in -5f64..5.0) {
        let y: Vec<Complex64> = x.iter().rev().copied().collect();
        let combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(xi, yi)| xi.scale(a) + yi.scale(b)).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let scale = x.iter().map(|c| c.abs()).sum::<f64>() * (a.abs() + b.abs() + 1.0);
        for (i, l) in lhs.iter().enumerate() {
            let r = fx[i].scale(a) + fy[i].scale(b);
            prop_assert!(close(*l, r, scale));
        }
    }

    #[test]
    fn convolution_theorem(x in real_seq(32)) {
        // conv(x, y) computed via FFT must match the O(n²) definition.
        let n = x.len();
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 - 1.0).collect();
        let via_fft = convolve_circular(&x, &y);
        let scale = energy(&x).sqrt() * energy(&y).sqrt() + 1.0;
        for i in 0..n {
            let direct: f64 = (0..n).map(|k| x[k] * y[(i + n - k) % n]).sum();
            prop_assert!((via_fft[i] - direct).abs() <= 1e-6 + 1e-9 * scale);
        }
    }

    #[test]
    fn polar_roundtrip_through_spectrum(x in real_seq(64)) {
        let s = Spectrum::of(&x);
        let back = Spectrum::from_interleaved_polar(&s.to_interleaved_polar());
        for (a, b) in s.0.iter().zip(&back.0) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }
}
