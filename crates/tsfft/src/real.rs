//! Helpers for real-valued sequences — the case the paper actually indexes.
//!
//! For a real sequence, the spectrum is conjugate-symmetric (Eq. 6):
//! `X[n−f] = conj(X[f])`, hence `|X[n−f]| = |X[f]|`. The paper's thesis-level
//! improvement (§2.1) is that the *last* few coefficients therefore carry the
//! same energy as the first few, so retaining `k` low-frequency coefficients
//! actually lower-bounds the distance with a factor √2:
//!
//! ```text
//! D²(x, y) ≥ 2 · Σ_{f=1..k} |X_f − Y_f|²      (for zero-mean sequences)
//! ```
//!
//! [`RealDft::distance_lower_bound_sq`] exposes exactly that bound and
//! `simquery` uses it to shrink every search rectangle by √2.

use crate::{ifft, rfft, Complex64};

/// Signal energy in the time domain — Eq. 2.
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Signal energy in the frequency domain.
pub fn energy_complex(x: &[Complex64]) -> f64 {
    x.iter().map(|v| v.norm_sqr()).sum()
}

/// The DFT of a real-valued sequence, with symmetry-aware accessors.
#[derive(Clone, Debug)]
pub struct RealDft {
    coeffs: Vec<Complex64>,
    n: usize,
}

impl RealDft {
    /// Transforms a real sequence into the frequency domain (via the
    /// two-for-one real-input FFT).
    pub fn forward(x: &[f64]) -> Self {
        Self {
            coeffs: rfft(x),
            n: x.len(),
        }
    }

    /// Wraps an already-computed full spectrum of a real sequence.
    pub fn from_spectrum(coeffs: Vec<Complex64>) -> Self {
        let n = coeffs.len();
        Self { coeffs, n }
    }

    /// Sequence length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the zero-length transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All `n` complex coefficients.
    pub fn coeffs(&self) -> &[Complex64] {
        &self.coeffs
    }

    /// Mutable access, for applying frequency-domain transformations.
    pub fn coeffs_mut(&mut self) -> &mut [Complex64] {
        &mut self.coeffs
    }

    /// Coefficient `f` (0-based; `f = 0` is the DC term).
    pub fn coeff(&self, f: usize) -> Complex64 {
        self.coeffs[f]
    }

    /// Inverse transform back to a real sequence.
    ///
    /// The imaginary residue (numerical noise, or evidence the spectrum was
    /// edited into something non-symmetric) is discarded; use
    /// [`Self::inverse_complex`] to inspect it.
    pub fn inverse(&self) -> Vec<f64> {
        ifft(&self.coeffs).into_iter().map(|c| c.re).collect()
    }

    /// Inverse transform keeping complex values.
    pub fn inverse_complex(&self) -> Vec<Complex64> {
        ifft(&self.coeffs)
    }

    /// Checks conjugate symmetry (Eq. 6) within `eps`. Always true for
    /// spectra produced by [`Self::forward`]; editing coefficients can
    /// break it.
    pub fn is_conjugate_symmetric(&self, eps: f64) -> bool {
        (1..self.n).all(|f| (self.coeffs[f] - self.coeffs[self.n - f].conj()).abs() <= eps)
    }

    /// Energy of the spectrum; by Parseval (Eq. 7) equals the time-domain
    /// energy.
    pub fn energy(&self) -> f64 {
        energy_complex(&self.coeffs)
    }

    /// Squared Euclidean distance to another spectrum over *all*
    /// coefficients; by Eq. 8 this equals the time-domain squared distance.
    pub fn distance_sq(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n, "spectra must have equal length");
        self.coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum()
    }

    /// Symmetry-boosted lower bound on the squared distance using only
    /// coefficients `1..=k` (the ones the index stores):
    /// every retained coefficient `f ∈ 1..=k` has a mirror `n−f` with the
    /// same difference magnitude, so the partial sum counts **twice**.
    ///
    /// Requires `2k < n` so a coefficient and its mirror are never both
    /// counted (the paper keeps k = 2 of n = 128).
    pub fn distance_lower_bound_sq(&self, other: &Self, k: usize) -> f64 {
        assert_eq!(self.n, other.n, "spectra must have equal length");
        assert!(
            2 * k < self.n,
            "k too large for symmetry bound: 2·{k} ≥ {}",
            self.n
        );
        let partial: f64 = (1..=k)
            .map(|f| (self.coeffs[f] - other.coeffs[f]).norm_sqr())
            .sum();
        2.0 * partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..128)
            .map(|t| (t as f64 * 0.17).sin() * 3.0 + (t as f64 * 0.02).cos())
            .collect()
    }

    #[test]
    fn parseval_holds() {
        let x = sample();
        let d = RealDft::forward(&x);
        assert!((energy(&x) - d.energy()).abs() < 1e-8);
    }

    #[test]
    fn symmetry_holds_for_real_input() {
        let d = RealDft::forward(&sample());
        assert!(d.is_conjugate_symmetric(1e-9));
    }

    #[test]
    fn symmetry_detects_violation() {
        let mut d = RealDft::forward(&sample());
        d.coeffs_mut()[1] += Complex64::new(0.5, 0.5);
        assert!(!d.is_conjugate_symmetric(1e-3));
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let x = sample();
        let back = RealDft::forward(&x).inverse();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_preserved_across_domains() {
        // Eq. 8: D(x, y) = D(X, Y).
        let x = sample();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(t, v)| v + (t as f64 * 0.4).sin())
            .collect();
        let dx = RealDft::forward(&x);
        let dy = RealDft::forward(&y);
        let dt: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!((dt - dx.distance_sq(&dy)).abs() < 1e-8);
    }

    #[test]
    fn lower_bound_is_a_lower_bound_and_doubles() {
        let x = sample();
        let y: Vec<f64> = x.iter().map(|v| v * 1.1 + 0.3).collect();
        let dx = RealDft::forward(&x);
        let dy = RealDft::forward(&y);
        let full = dx.distance_sq(&dy);
        for k in 1..8 {
            let lb = dx.distance_lower_bound_sq(&dy, k);
            assert!(lb <= full + 1e-9, "k={k}: {lb} > {full}");
            // And it is exactly twice the one-sided partial sum.
            let one_sided: f64 = (1..=k)
                .map(|f| (dx.coeff(f) - dy.coeff(f)).norm_sqr())
                .sum();
            assert!((lb - 2.0 * one_sided).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "k too large")]
    fn lower_bound_rejects_overlapping_mirror() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let d = RealDft::forward(&x);
        let _ = d.distance_lower_bound_sq(&d.clone(), 2); // 2k = 4 = n
    }

    #[test]
    fn energy_empty_is_zero() {
        assert_eq!(energy(&[]), 0.0);
        let d = RealDft::forward(&[]);
        assert!(d.is_empty());
        assert_eq!(d.energy(), 0.0);
    }
}
