//! Scatter-gather query execution over a [`ShardedIndex`].
//!
//! Range queries (MT-index, ST-index, sequential scan) scatter to every
//! shard on scoped threads; each shard runs the ordinary single-index
//! engine under its own read guard, and the gather step translates local
//! ordinals to global ones and merges the result sets. Because each shard
//! indexes a disjoint subset of the corpus and every engine is exact over
//! its shard, the union is exactly the single-index answer.
//!
//! # Linearization against concurrent inserts
//!
//! A query linearizes at the moment it snapshots the global map
//! ([`ShardedIndex::map_snapshot`]). A concurrent `insert_series`
//! publishes to the shard index before the map, so a shard read acquired
//! after the insert can surface a local ordinal the snapshot has never
//! heard of. The gather translates through the snapshot defensively and
//! drops such matches: a sequence mapped after the query's linearization
//! point is not part of the queried corpus, so excluding it is the exact
//! answer, not an approximation.
//!
//! # Exact global kNN by bound propagation
//!
//! kNN cannot union per-shard answers naively — shard A's 5th-nearest may
//! be globally irrelevant while shard B holds all true top-k. Instead the
//! gather runs shards *sequentially*, threading the running global k-th
//! distance `τ` into each next shard as the initial pruning bound of
//! [`simquery::plan::execute_knn_fragment`]: a shard search abandons any
//! subtree (and skips any candidate refinement) whose lower bound exceeds
//! `τ`. The first shard runs unbounded (`τ = ∞`); each later shard can
//! only shrink `τ`. Bound comparisons keep ties (`≤ τ` survives), so
//! equal-distance candidates from later shards still surface and the
//! deterministic (distance, global-ordinal) tie-break decides the final
//! top-k. Any error from any shard aborts the query with a typed
//! [`QueryError`] — a partial merge is never returned.

use crate::index::ShardedIndex;
use simquery::plan::{
    self, EngineChoice, EnginePref, LogicalQuery, LogicalVerb, PhysicalPlan, PlanOutput, Planner,
};
use simquery::query::RangeSpec;
use simquery::report::{EngineMetrics, Match, QueryError, QueryResult};
use simquery::transform::Family;
use std::time::Instant;
use tseries::TimeSeries;

/// Which single-index engine each shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// MT-index: one traversal, transformed MBRs applied per node.
    Mt,
    /// ST-index: one traversal per transformation.
    St,
    /// Sequential scan of the shard's heap.
    Scan,
}

impl From<Engine> for EngineChoice {
    fn from(e: Engine) -> Self {
        match e {
            Engine::Mt => EngineChoice::Mt,
            Engine::St => EngineChoice::St,
            Engine::Scan => EngineChoice::Scan,
        }
    }
}

/// Minimum recorded fragment executions before measured selectivity may
/// reshape the scatter (mirrors the planner's own warm-up gate).
const SELECTIVE_MIN_QUERIES: u64 = 3;

/// Mean match selectivity below which a family counts as highly
/// selective: per-shard result sets are then so small that the scatter
/// threads cost more than the fragments they run.
const SELECTIVE_SCATTER_THRESHOLD: f64 = 0.02;

/// Lowers a logical range query to the fan-out physical plan: the
/// planner runs once (against shard 0 — every shard holds an i.i.d.
/// partition of the same corpus, so one shard's statistics price all of
/// them), then the plan is stamped with the scatter shape: fan-out =
/// shard count, threads capped at the hardware parallelism.
///
/// **Plan-aware scatter:** once the registry has seen enough queries to
/// trust the family's measured selectivity, a highly selective query
/// collapses to a single scatter lane (`fanout = threads = 1`). Every
/// shard still executes — the lanes only decide concurrency, so results
/// are bit-identical (the sharded-parity regression test pins this) —
/// but the per-query thread spawns are gone.
fn plan_fanout(
    sharded: &ShardedIndex,
    lq: &LogicalQuery,
    query: Option<&TimeSeries>,
) -> Result<PhysicalPlan, QueryError> {
    let shards = sharded.shards();
    let guard = shards[0].read();
    let mut plan = Planner::new().plan(&guard, sharded.stats(), lq, query)?;
    drop(guard);
    plan.fanout = shards.len();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    plan.threads = cores.min(shards.len());
    if shards.len() > 1 {
        if let Some(fs) = sharded.stats().family_stats(plan.engine, &lq.family) {
            if fs.queries >= SELECTIVE_MIN_QUERIES
                && fs
                    .mean_selectivity()
                    .is_some_and(|s| s < SELECTIVE_SCATTER_THRESHOLD)
            {
                plan.fanout = 1;
                plan.threads = 1;
            }
        }
    }
    Ok(plan)
}

fn run_fragment(
    index: &simquery::index::SeqIndex,
    sharded: &ShardedIndex,
    lq: &LogicalQuery,
    plan: &PhysicalPlan,
    query: &TimeSeries,
) -> Result<QueryResult, QueryError> {
    let _span = simobs::trace::span("shard.fragment");
    match plan::execute_plan(index, sharded.stats(), lq, plan, Some(query))? {
        PlanOutput::Range(r) => Ok(r),
        _ => unreachable!("range fragment produced a non-range output"),
    }
}

/// Sums per-shard metrics; wall clock is the caller's end-to-end time,
/// not the sum (shards run concurrently).
fn merge_metrics(parts: &[EngineMetrics], wall: std::time::Duration) -> EngineMetrics {
    let mut total = EngineMetrics {
        wall,
        ..EngineMetrics::default()
    };
    for m in parts {
        total.node_accesses += m.node_accesses;
        total.leaf_accesses += m.leaf_accesses;
        total.record_page_accesses += m.record_page_accesses;
        total.record_fetches += m.record_fetches;
        total.comparisons += m.comparisons;
        total.candidates += m.candidates;
    }
    total
}

/// The distributed executor for a planned range query: scatters the
/// plan's fragment to every shard and merges the exact union, returning
/// the plan alongside the result and each shard's own metrics.
pub fn execute_range(
    sharded: &ShardedIndex,
    lq: &LogicalQuery,
    query: &TimeSeries,
) -> Result<(PhysicalPlan, QueryResult, Vec<EngineMetrics>), QueryError> {
    debug_assert!(matches!(lq.verb, LogicalVerb::Range));
    let start = Instant::now();
    let plan = plan_fanout(sharded, lq, Some(query))?;
    let map = sharded.map_snapshot();
    let shards = sharded.shards();

    let mut outcomes: Vec<Option<Result<QueryResult, QueryError>>> = Vec::new();
    outcomes.resize_with(shards.len(), || None);
    // Scatter threads only pay off when cores exist to run them; the
    // planner capped the fan-out at the hardware thread count so a
    // 64-shard index on an 8-core box spawns 8 threads per query, each
    // draining a contiguous chunk of shards, rather than 64. On a single
    // hardware thread (or a single shard) the same loop runs inline with
    // no spawn at all.
    let threads = plan.threads.max(1);
    {
        let _scatter = simobs::trace::span("shard.scatter");
        if threads <= 1 {
            for (shard, slot) in outcomes.iter_mut().enumerate() {
                let index = shards[shard].read();
                *slot = Some(run_fragment(&index, sharded, lq, &plan, query));
            }
        } else {
            let chunk = shards.len().div_ceil(threads);
            let (planref, lqref) = (&plan, lq);
            std::thread::scope(|s| {
                for (t, slots) in outcomes.chunks_mut(chunk).enumerate() {
                    s.spawn(move || {
                        for (i, slot) in slots.iter_mut().enumerate() {
                            let index = shards[t * chunk + i].read();
                            *slot = Some(run_fragment(&index, sharded, lqref, planref, query));
                        }
                    });
                }
            });
        }
    }

    let _gather = simobs::trace::span("shard.gather");
    let mut matches: Vec<Match> = Vec::new();
    let mut per_shard = Vec::with_capacity(shards.len());
    for (shard, outcome) in outcomes.into_iter().enumerate() {
        // The first failing shard (by id, for determinism) aborts the query.
        let result = outcome.expect("scatter thread completed")?;
        per_shard.push(result.metrics);
        // Translate through the snapshot; locals mapped after the query's
        // linearization point are dropped (see the module docs).
        let globals = map.globals_of(shard);
        matches.extend(
            result
                .matches
                .iter()
                .filter_map(|m| globals.get(m.seq).map(|&g| Match { seq: g, ..*m })),
        );
    }
    matches.sort_by_key(|m| (m.seq, m.transform));

    let merged = QueryResult {
        matches,
        metrics: merge_metrics(&per_shard, start.elapsed()),
    };
    Ok((plan, merged, per_shard))
}

/// Scatters a range query with a forced engine to every shard — the
/// pre-planner entry point, kept for callers (and tests) that pin the
/// engine themselves. Internally this is [`execute_range`] with
/// [`EnginePref::Force`].
pub fn range_query_detailed(
    sharded: &ShardedIndex,
    engine: Engine,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Result<(QueryResult, Vec<EngineMetrics>), QueryError> {
    let lq =
        LogicalQuery::range(family.clone(), *spec).with_engine(EnginePref::Force(engine.into()));
    execute_range(sharded, &lq, query).map(|(_, r, per)| (r, per))
}

/// [`range_query_detailed`] without the per-shard breakdown.
pub fn range_query(
    sharded: &ShardedIndex,
    engine: Engine,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    range_query_detailed(sharded, engine, query, family, spec).map(|(r, _)| r)
}

/// Exact global kNN with bound propagation (see the module docs), also
/// returning each shard's metrics. Matches are sorted by
/// (distance, global ordinal) — the deterministic tie-break.
pub fn knn_detailed(
    sharded: &ShardedIndex,
    query: &TimeSeries,
    family: &Family,
    k: usize,
) -> Result<(Vec<Match>, EngineMetrics, Vec<EngineMetrics>), QueryError> {
    let lq = LogicalQuery::knn(family.clone(), k);
    execute_knn(sharded, &lq, query).map(|(_, m, t, per)| (m, t, per))
}

/// The distributed executor for a planned kNN query: the planner shapes
/// the fan-out, then the τ-threaded bounded merge of the module docs runs
/// the shards sequentially.
pub fn execute_knn(
    sharded: &ShardedIndex,
    lq: &LogicalQuery,
    query: &TimeSeries,
) -> Result<(PhysicalPlan, Vec<Match>, EngineMetrics, Vec<EngineMetrics>), QueryError> {
    let LogicalVerb::Knn { k } = lq.verb else {
        unreachable!("execute_knn takes a kNN logical query");
    };
    let _span = simobs::trace::span("shard.knn");
    let start = Instant::now();
    let mut plan = plan_fanout(sharded, lq, Some(query))?;
    // Bound propagation is inherently sequential; the plan records that.
    plan.threads = 1;
    let map = sharded.map_snapshot();
    let shards = sharded.shards();

    let mut top: Vec<Match> = Vec::new();
    let mut per_shard = Vec::with_capacity(shards.len());
    let mut tau = f64::INFINITY;
    for (shard, handle) in shards.iter().enumerate() {
        let index = handle.read();
        sharded.stats().note_dispatch(plan.engine);
        let (found, metrics) = plan::execute_knn_fragment(&index, query, &lq.family, k, tau)?;
        per_shard.push(metrics);
        // As in the range gather: snapshot translation drops sequences
        // inserted after this query linearized.
        let globals = map.globals_of(shard);
        top.extend(
            found
                .iter()
                .filter_map(|m| globals.get(m.seq).map(|&g| Match { seq: g, ..*m })),
        );
        top.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.seq.cmp(&b.seq)));
        top.truncate(k);
        if top.len() == k {
            tau = top[k - 1].dist;
        }
    }

    let total = merge_metrics(&per_shard, start.elapsed());
    Ok((plan, top, total, per_shard))
}

/// [`knn_detailed`] without the per-shard breakdown.
pub fn knn(
    sharded: &ShardedIndex,
    query: &TimeSeries,
    family: &Family,
    k: usize,
) -> Result<(Vec<Match>, EngineMetrics), QueryError> {
    knn_detailed(sharded, query, family, k).map(|(m, t, _)| (m, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::ShardConfig;
    use simquery::index::IndexConfig;
    use tseries::{Corpus, CorpusKind};

    fn fixtures(n: usize, shards: usize) -> (Corpus, ShardedIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 23);
        let s = ShardedIndex::build(
            &c,
            ShardConfig::new(shards).unwrap(),
            IndexConfig::default(),
        )
        .unwrap();
        (c, s)
    }

    #[test]
    fn range_matches_report_global_ordinals() {
        let (c, s) = fixtures(90, 4);
        let family = Family::moving_averages(2..=6, 64);
        let spec = RangeSpec::correlation(0.9);
        let (result, per_shard) =
            range_query_detailed(&s, Engine::Mt, &c.series()[7], &family, &spec).unwrap();
        assert_eq!(per_shard.len(), 4);
        // Ordinal 7 matches itself under the identity-like mv2 window.
        assert!(result.matched_sequences().contains(&7));
        for m in &result.matches {
            assert!(m.seq < 90, "global ordinal out of range: {}", m.seq);
        }
        let summed: u64 = per_shard.iter().map(|m| m.node_accesses).sum();
        assert_eq!(result.metrics.node_accesses, summed);
    }

    #[test]
    fn knn_finds_self_first() {
        let (c, s) = fixtures(60, 3);
        let family = Family::moving_averages(1..=4, 64);
        let (top, _, per_shard) = knn_detailed(&s, &c.series()[31], &family, 3).unwrap();
        assert_eq!(top[0].seq, 31);
        assert!(top[0].dist < 1e-9);
        assert_eq!(per_shard.len(), 3);
        for w in top.windows(2) {
            assert!(
                w[0].dist < w[1].dist || (w[0].dist == w[1].dist && w[0].seq < w[1].seq),
                "merge must be (dist, ordinal)-sorted"
            );
        }
    }

    #[test]
    fn concurrent_inserts_never_panic_the_gather() {
        // Regression: a query whose map snapshot predates an insert but
        // whose shard read postdates it used to panic translating the
        // not-yet-mapped local ordinal; now such matches are dropped.
        let (c, s) = fixtures(64, 4);
        let family = Family::moving_averages(2..=4, 64);
        let spec = RangeSpec::correlation(0.8);
        std::thread::scope(|scope| {
            let sref = &s;
            let extra = Corpus::generate(CorpusKind::SyntheticWalks, 64, 64, 99);
            scope.spawn(move || {
                for ts in extra.series() {
                    sref.insert_series(ts).unwrap();
                }
            });
            for _ in 0..20 {
                let (result, _) =
                    range_query_detailed(sref, Engine::Scan, &c.series()[3], &family, &spec)
                        .unwrap();
                for m in &result.matches {
                    assert!(m.seq < sref.len(), "translated past the live corpus");
                }
                let (top, _, _) = knn_detailed(sref, &c.series()[3], &family, 3).unwrap();
                assert_eq!(top[0].seq, 3);
            }
        });
    }

    #[test]
    fn selective_queries_shrink_the_scatter_without_changing_results() {
        let (c, s) = fixtures(120, 4);
        // mv1 is the identity, so the query always matches itself exactly;
        // at correlation 0.95 on synthetic walks essentially nothing else
        // qualifies, so selectivity ≈ 5/600 — far below the scatter
        // threshold.
        let family = Family::moving_averages(1..=5, 64);
        let spec = RangeSpec::correlation(0.95);
        let lq = LogicalQuery::range(family.clone(), spec)
            .with_engine(EnginePref::Force(EngineChoice::Scan));
        let q = &c.series()[5];
        // Cold registry: the scatter is stamped at full width.
        let (plan_cold, cold, _) = execute_range(&s, &lq, q).unwrap();
        assert_eq!(plan_cold.fanout, 4, "no statistics yet, full fan-out");
        // Warm past the minimum (each scatter records one fragment per
        // shard, so one query already clears it — run a few regardless).
        for _ in 0..3 {
            execute_range(&s, &lq, q).unwrap();
        }
        let (plan_warm, warm, per_shard) = execute_range(&s, &lq, q).unwrap();
        assert!(
            plan_warm.fanout < 4,
            "measured selectivity must shrink the scatter width, got fanout={}",
            plan_warm.fanout
        );
        assert_eq!(plan_warm.threads, 1);
        assert_eq!(per_shard.len(), 4, "every shard still executes");
        // Parity: the shrunken scatter is a concurrency decision only.
        assert_eq!(
            cold.sorted_pairs(),
            warm.sorted_pairs(),
            "plan-aware scatter changed the result set"
        );
        assert!(!warm.matches.is_empty(), "self-match must survive");
    }

    #[test]
    fn later_shards_are_pruned_by_the_bound() {
        let (c, s) = fixtures(400, 4);
        let family = Family::moving_averages(3..=5, 64);
        let (_, _, per_shard) = knn_detailed(&s, &c.series()[0], &family, 2).unwrap();
        let first = per_shard[0].candidates;
        let later: u64 = per_shard[1..].iter().map(|m| m.candidates).sum();
        // The unbounded first shard refines more candidates than the three
        // bounded later shards combined on a 400-walk corpus.
        assert!(
            later < first * 3,
            "bound propagation should prune: first={first} later={later}"
        );
    }
}
