//! Global-ordinal → (shard, local-ordinal) assignment.
//!
//! The [`Partitioner`] decides *which shard* a global ordinal lands on; the
//! [`ShardMap`] is the durable record of every decision ever made, and the
//! only thing queries consult. Once an ordinal is mapped it never moves:
//! the map is append-only, so a translation read concurrently with an
//! insert can never observe a relocation.

use crate::cfg::PartitionerKind;

/// Stateless assignment policy over global ordinals.
#[derive(Clone, Copy, Debug)]
pub struct Partitioner {
    kind: PartitionerKind,
    shards: usize,
}

/// `splitmix64` — the 64-bit finalizer used as the ordinal hash. In-tree
/// (the workspace carries no external crates) and stable across runs, so a
/// persisted sharding stays valid when reopened.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Partitioner {
    /// A partitioner for `shards` shards (must be ≥ 1).
    pub fn new(kind: PartitionerKind, shards: usize) -> Self {
        assert!(shards >= 1, "partitioner needs at least one shard");
        Self { kind, shards }
    }

    /// Shard assignment for every ordinal of an initial corpus of `total`
    /// sequences. `Range` produces contiguous chunks here (the layout the
    /// name promises); the other kinds are pointwise.
    pub fn assign_bulk(&self, total: usize) -> Vec<usize> {
        match self.kind {
            PartitionerKind::Range => {
                let chunk = total.div_ceil(self.shards).max(1);
                (0..total)
                    .map(|g| (g / chunk).min(self.shards - 1))
                    .collect()
            }
            _ => (0..total).map(|g| self.assign_pointwise(g)).collect(),
        }
    }

    /// Shard for one live-inserted ordinal, given current per-shard loads.
    /// `Range` cannot extend its build-time chunks without relocation, so
    /// live inserts go to the least-loaded shard (ties to the lowest id).
    /// Callers should pass *live* counts (mapped minus tombstoned, as
    /// [`crate::index::ShardedIndex::insert_series`] does) — a shard full
    /// of deleted sequences has capacity, not load.
    pub fn assign_insert(&self, global: usize, loads: &[usize]) -> usize {
        match self.kind {
            PartitionerKind::Range => {
                let mut best = 0;
                for (s, &l) in loads.iter().enumerate() {
                    if l < loads[best] {
                        best = s;
                    }
                }
                best
            }
            _ => self.assign_pointwise(global),
        }
    }

    fn assign_pointwise(&self, global: usize) -> usize {
        match self.kind {
            PartitionerKind::Hash => (splitmix64(global as u64) % self.shards as u64) as usize,
            PartitionerKind::RoundRobin => global % self.shards,
            PartitionerKind::Range => unreachable!("range assigns in bulk or by load"),
        }
    }
}

/// The stable global-ordinal ↔ (shard, local-ordinal) mapping.
///
/// Append-only: `push` records assignments in global-ordinal order, and a
/// shard's local ordinals are exactly the order its globals were pushed —
/// which matches [`simquery::index::SeqIndex`]'s own ordinal assignment
/// (build order, then `insert_series` return values).
#[derive(Clone, Debug, Default)]
pub struct ShardMap {
    /// Indexed by global ordinal.
    to_local: Vec<(u32, u32)>,
    /// Per shard, local ordinal → global ordinal.
    to_global: Vec<Vec<usize>>,
}

impl ShardMap {
    /// An empty map over `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            to_local: Vec::new(),
            to_global: vec![Vec::new(); shards],
        }
    }

    /// Builds a map from a bulk assignment (`assignment[g]` = shard of
    /// global ordinal `g`), assigning local ordinals in global order.
    pub fn from_assignment(shards: usize, assignment: &[usize]) -> Self {
        let mut map = Self::new(shards);
        for &s in assignment {
            map.push(s);
        }
        map
    }

    /// Records the next global ordinal as living on `shard`; returns
    /// `(global, local)`.
    pub fn push(&mut self, shard: usize) -> (usize, usize) {
        let global = self.to_local.len();
        let local = self.to_global[shard].len();
        self.to_local.push((shard as u32, local as u32));
        self.to_global[shard].push(global);
        (global, local)
    }

    /// Number of mapped global ordinals.
    pub fn len(&self) -> usize {
        self.to_local.len()
    }

    /// True when nothing has been mapped.
    pub fn is_empty(&self) -> bool {
        self.to_local.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.to_global.len()
    }

    /// `(shard, local)` of a global ordinal, if mapped.
    pub fn locate(&self, global: usize) -> Option<(usize, usize)> {
        self.to_local
            .get(global)
            .map(|&(s, l)| (s as usize, l as usize))
    }

    /// Global ordinal of `(shard, local)`.
    ///
    /// # Panics
    ///
    /// Panics when the pair was never mapped — shards only report locals
    /// they were handed, so an unmapped pair is a bookkeeping bug.
    pub fn global_of(&self, shard: usize, local: usize) -> usize {
        self.to_global[shard][local]
    }

    /// Local → global table of one shard.
    pub fn globals_of(&self, shard: usize) -> &[usize] {
        &self.to_global[shard]
    }

    /// Sequences currently mapped to each shard, tombstoned included —
    /// the map never forgets an assignment. Subtract per-shard deleted
    /// counts to get live loads.
    pub fn loads(&self) -> Vec<usize> {
        self.to_global.iter().map(Vec::len).collect()
    }

    /// Shard of every global ordinal, in global order — the persisted form.
    pub fn assignment(&self) -> Vec<usize> {
        self.to_local.iter().map(|&(s, _)| s as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_stripes() {
        let p = Partitioner::new(PartitionerKind::RoundRobin, 3);
        assert_eq!(p.assign_bulk(7), vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.assign_insert(7, &[3, 2, 2]), 1);
    }

    #[test]
    fn range_chunks_then_balances() {
        let p = Partitioner::new(PartitionerKind::Range, 4);
        let a = p.assign_bulk(10);
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        // Live inserts fill the emptiest shard.
        assert_eq!(p.assign_insert(10, &[3, 3, 3, 1]), 3);
        assert_eq!(p.assign_insert(11, &[2, 3, 3, 2]), 0);
    }

    #[test]
    fn hash_is_stable_and_covers() {
        let p = Partitioner::new(PartitionerKind::Hash, 4);
        let a = p.assign_bulk(256);
        assert_eq!(a, p.assign_bulk(256), "assignment must be deterministic");
        for s in 0..4 {
            assert!(a.contains(&s), "shard {s} starved by hash on 256 ordinals");
        }
    }

    #[test]
    fn map_roundtrips() {
        let map = ShardMap::from_assignment(3, &[2, 0, 2, 1, 0]);
        assert_eq!(map.len(), 5);
        assert_eq!(map.locate(0), Some((2, 0)));
        assert_eq!(map.locate(2), Some((2, 1)));
        assert_eq!(map.locate(4), Some((0, 1)));
        assert_eq!(map.locate(5), None);
        assert_eq!(map.global_of(2, 1), 2);
        assert_eq!(map.loads(), vec![2, 1, 2]);
        assert_eq!(map.assignment(), vec![2, 0, 2, 1, 0]);
    }
}
