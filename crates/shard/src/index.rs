//! [`ShardedIndex`]: N independent [`SeqIndex`] shards behind per-shard
//! [`SharedIndex`] locks, with a stable global-ordinal ↔ (shard, local)
//! mapping.
//!
//! # Locking
//!
//! Each shard has its own `RwLock`, so a mutation write-locks exactly one
//! shard while the other N−1 keep serving reads (the starvation discipline
//! documented in [`simquery::shared`]). Global-ordinal assignment is
//! serialised by a dedicated insert gate — never by locking every shard —
//! and the global map takes its own brief write lock only *after* the
//! shard-local insert has succeeded, so concurrent readers translate
//! ordinals against a map that always describes fully-inserted sequences.
//! The converse — a shard read observing a local ordinal the reader's map
//! snapshot predates — is handled by the gather's defensive snapshot
//! translation (see [`crate::gather`]'s linearization docs).

use crate::cfg::{PartitionerKind, ShardConfig};
use crate::partition::{Partitioner, ShardMap};
use pagestore::sync::{Mutex, RwLock};
use pagestore::{PageDevice, PageError};
use simquery::index::{AccessCounters, IndexConfig, SeqIndex};
use simquery::report::QueryError;
use simquery::shared::SharedIndex;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use tseries::{Corpus, TimeSeries};

/// Errors raised while building or opening a sharded index.
#[derive(Debug)]
pub enum ShardError {
    /// The corpus is empty or has zero-length sequences.
    EmptyCorpus,
    /// The partitioner assigned no sequences to this shard — with fewer
    /// sequences than shards (or a pathological hash on a tiny corpus) the
    /// split is meaningless; lower the shard count.
    EmptyShard(usize),
    /// Invalid configuration (shard count out of bounds, bad partitioner).
    Config(String),
    /// A page device failed during construction.
    Page(PageError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyCorpus => write!(f, "cannot shard an empty corpus"),
            Self::EmptyShard(s) => {
                write!(f, "shard {s} received no sequences; lower the shard count")
            }
            Self::Config(msg) => write!(f, "bad shard configuration: {msg}"),
            Self::Page(e) => write!(f, "page access failed building shard: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Page(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PageError> for ShardError {
    fn from(e: PageError) -> Self {
        Self::Page(e)
    }
}

/// A corpus partitioned across N independent [`SeqIndex`] shards.
pub struct ShardedIndex {
    shards: Vec<SharedIndex>,
    map: RwLock<ShardMap>,
    insert_gate: Mutex<()>,
    partitioner: Partitioner,
    kind: PartitionerKind,
    seq_len: usize,
}

impl fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("partitioner", &self.kind)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl ShardedIndex {
    /// Partitions `corpus` and builds one index per shard on plain
    /// in-memory disks. Every shard must receive at least one sequence.
    pub fn build(
        corpus: &Corpus,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
    ) -> Result<Self, ShardError> {
        Self::build_with(corpus, cfg, |_, sub| Ok(SeqIndex::build(sub, index_cfg)))
    }

    /// [`Self::build`] with caller-supplied page devices per shard — e.g.
    /// a [`pagestore::FaultyDisk`] on one shard for fault-injection tests.
    /// The factory receives the shard id and returns its
    /// `(tree, heap)` devices.
    pub fn build_on(
        corpus: &Corpus,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
        mut devices: impl FnMut(usize) -> (Arc<dyn PageDevice>, Arc<dyn PageDevice>),
    ) -> Result<Self, ShardError> {
        Self::build_with(corpus, cfg, |shard, sub| {
            let (tree, heap) = devices(shard);
            SeqIndex::build_on(sub, index_cfg, tree, heap)
        })
    }

    fn build_with(
        corpus: &Corpus,
        cfg: ShardConfig,
        mut build: impl FnMut(usize, &Corpus) -> Result<Option<SeqIndex>, PageError>,
    ) -> Result<Self, ShardError> {
        let cfg = cfg.validated().map_err(ShardError::Config)?;
        if corpus.is_empty() || corpus.series_len() == 0 {
            return Err(ShardError::EmptyCorpus);
        }
        let partitioner = Partitioner::new(cfg.partitioner, cfg.shards);
        let assignment = partitioner.assign_bulk(corpus.len());
        let map = ShardMap::from_assignment(cfg.shards, &assignment);

        let mut shards = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let globals = map.globals_of(shard);
            if globals.is_empty() {
                return Err(ShardError::EmptyShard(shard));
            }
            let names = globals.iter().map(|&g| corpus.names()[g].clone()).collect();
            let series = globals
                .iter()
                .map(|&g| corpus.series()[g].clone())
                .collect();
            let sub = Corpus::from_parts(names, series);
            let index = build(shard, &sub)?.ok_or(ShardError::EmptyShard(shard))?;
            shards.push(SharedIndex::new(index));
        }

        Ok(Self {
            shards,
            map: RwLock::new(map),
            insert_gate: Mutex::new(()),
            partitioner,
            kind: cfg.partitioner,
            seq_len: corpus.series_len(),
        })
    }

    /// Repartitions an existing single index: fetches every record from
    /// its heap (tombstoned ordinals included — the heap is append-only),
    /// rebuilds N shards, and replays the tombstones. Global ordinals are
    /// preserved, so results match the source index exactly.
    pub fn from_index(
        index: &SeqIndex,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
    ) -> Result<Self, ShardError> {
        let mut names = Vec::with_capacity(index.len());
        let mut series = Vec::with_capacity(index.len());
        for g in 0..index.len() {
            names.push(format!("s{g}"));
            series.push(index.fetch_series(g)?);
        }
        let sharded = Self::build(&Corpus::from_parts(names, series), cfg, index_cfg)?;
        for g in index.deleted_ordinals() {
            sharded.delete_series(g).map_err(|e| match e {
                QueryError::Io(p) => ShardError::Page(p),
                other => ShardError::Config(other.to_string()),
            })?;
        }
        Ok(sharded)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard handles, for scatter execution and serving.
    pub fn shards(&self) -> &[SharedIndex] {
        &self.shards
    }

    /// The partitioner in effect.
    pub fn partitioner_kind(&self) -> PartitionerKind {
        self.kind
    }

    /// Length of every sequence.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Total sequences across all shards (tombstoned included).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no sequences are mapped (never — `build` rejects that).
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Tombstoned sequences across all shards.
    pub fn deleted_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().deleted_count()).sum()
    }

    /// Sequences per shard.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.map.read().loads()
    }

    /// Snapshot of the global map (brief read lock; the copy stays valid
    /// because mapped ordinals never move).
    pub fn map_snapshot(&self) -> ShardMap {
        self.map.read().clone()
    }

    /// `(shard, local)` of a global ordinal.
    pub fn locate(&self, global: usize) -> Option<(usize, usize)> {
        self.map.read().locate(global)
    }

    /// Appends a sequence, returning its global ordinal.
    ///
    /// Only the receiving shard is write-locked; reads on the other N−1
    /// shards proceed throughout (see the module docs on locking).
    pub fn insert_series(&self, ts: &TimeSeries) -> Result<usize, QueryError> {
        let _gate = self.insert_gate.lock();
        let (global, shard) = {
            let map = self.map.read();
            let g = map.len();
            let mut loads = map.loads();
            // Least-loaded placement (the Range policy) counts *live*
            // sequences: a shard full of tombstones has capacity, not load.
            if self.kind == PartitionerKind::Range {
                for (s, load) in loads.iter_mut().enumerate() {
                    *load = load.saturating_sub(self.shards[s].read().deleted_count());
                }
            }
            (g, self.partitioner.assign_insert(g, &loads))
        };
        let local = self.shards[shard].write().insert_series(ts)?;
        let mut map = self.map.write();
        let (g, l) = map.push(shard);
        debug_assert_eq!((g, l), (global, local), "gate must serialise ordinals");
        Ok(global)
    }

    /// Tombstones a global ordinal. `Ok(false)` when out of range or
    /// already deleted. Write-locks only the owning shard.
    pub fn delete_series(&self, global: usize) -> Result<bool, QueryError> {
        let Some((shard, local)) = self.locate(global) else {
            return Ok(false);
        };
        self.shards[shard].write().delete_series(local)
    }

    /// Fetches a sequence's raw samples by global ordinal (a counted
    /// access on its shard).
    ///
    /// # Panics
    ///
    /// Panics when `global` was never mapped — callers gate on
    /// [`Self::len`] or [`Self::locate`] first, as with
    /// [`SeqIndex::fetch_series`]'s own out-of-range behaviour.
    pub fn fetch_series(&self, global: usize) -> Result<TimeSeries, QueryError> {
        let (shard, local) = self.locate(global).expect("unmapped global ordinal");
        Ok(self.shards[shard].read().fetch_series(local)?)
    }

    /// Access counters of each shard, in shard order — the per-fragment
    /// accounting the paper's cost model sums over.
    pub fn per_shard_counters(&self) -> Vec<AccessCounters> {
        self.shards.iter().map(|s| s.read().counters()).collect()
    }

    /// Aggregate access counters across all shards.
    pub fn counters(&self) -> AccessCounters {
        self.per_shard_counters()
            .into_iter()
            .fold(AccessCounters::default(), |acc, c| AccessCounters {
                node_reads: acc.node_reads + c.node_reads,
                record_page_reads: acc.record_page_reads + c.record_page_reads,
                record_fetches: acc.record_fetches + c.record_fetches,
            })
    }

    /// Zeroes every shard's counters and record pool (cold per-query
    /// accounting, as [`SeqIndex::reset_counters`]).
    pub fn reset_counters(&self) -> Result<(), PageError> {
        for s in &self.shards {
            s.read().reset_counters()?;
        }
        Ok(())
    }

    /// Persists all shards under `dir`: `shard-N/` subdirectories (see
    /// [`SeqIndex::save`]) plus a `sharding.txt` manifest recording the
    /// partitioner and the global assignment order.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, s) in self.shards.iter().enumerate() {
            s.read().save(&dir.join(format!("shard-{i}")))?;
        }
        let map = self.map.read();
        let mut meta = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(meta, "simshard v1");
        let _ = writeln!(meta, "shards {}", self.shards.len());
        let _ = writeln!(meta, "partitioner {}", self.kind);
        let _ = writeln!(meta, "seq_len {}", self.seq_len);
        let _ = writeln!(
            meta,
            "assignment {}",
            map.assignment()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        std::fs::write(dir.join("sharding.txt"), meta)
    }

    /// Reopens a directory written by [`Self::save`]. `heap_pool_pages`
    /// sizes each shard's record buffer pool.
    pub fn open(dir: &Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let meta = std::fs::read_to_string(dir.join("sharding.txt"))?;
        let mut lines = meta.lines();
        if lines.next() != Some("simshard v1") {
            return Err(bad("not a simshard directory".into()));
        }
        let mut shards_n = 0usize;
        let mut kind = PartitionerKind::Hash;
        let mut seq_len = 0usize;
        let mut assignment = Vec::new();
        for line in lines {
            match line.split_once(' ') {
                Some(("shards", v)) => {
                    shards_n = v
                        .trim()
                        .parse()
                        .map_err(|e| bad(format!("bad shards: {e}")))?;
                }
                Some(("partitioner", v)) => {
                    kind = v.trim().parse().map_err(bad)?;
                }
                Some(("seq_len", v)) => {
                    seq_len = v
                        .trim()
                        .parse()
                        .map_err(|e| bad(format!("bad seq_len: {e}")))?;
                }
                Some(("assignment", v)) if !v.trim().is_empty() => {
                    assignment = v
                        .trim()
                        .split(',')
                        .map(|s| s.parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| bad(format!("bad assignment entry: {e}")))?;
                }
                _ => {}
            }
        }
        if shards_n == 0 || shards_n > crate::cfg::MAX_SHARDS {
            return Err(bad(format!("shard count {shards_n} out of range")));
        }
        if assignment.iter().any(|&s| s >= shards_n) {
            return Err(bad("assignment references a missing shard".into()));
        }
        let mut shards = Vec::with_capacity(shards_n);
        for i in 0..shards_n {
            shards.push(SharedIndex::open(
                &dir.join(format!("shard-{i}")),
                heap_pool_pages,
            )?);
        }
        let map = ShardMap::from_assignment(shards_n, &assignment);
        for (i, s) in shards.iter().enumerate() {
            if s.read().len() != map.globals_of(i).len() {
                return Err(bad(format!(
                    "shard {i} holds {} sequences but the manifest maps {}",
                    s.read().len(),
                    map.globals_of(i).len()
                )));
            }
        }
        // A missing or corrupt seq_len line must not silently poison every
        // future family validation; the shards know the true length.
        let disk_len = shards[0].read().seq_len();
        if seq_len != disk_len {
            return Err(bad(format!(
                "manifest seq_len {seq_len} does not match the on-disk sequence length {disk_len}"
            )));
        }
        Ok(Self {
            shards,
            map: RwLock::new(map),
            insert_gate: Mutex::new(()),
            partitioner: Partitioner::new(kind, shards_n),
            kind,
            seq_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseries::CorpusKind;

    fn corpus(n: usize) -> Corpus {
        Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 11)
    }

    fn sharded(n: usize, shards: usize) -> ShardedIndex {
        ShardedIndex::build(
            &corpus(n),
            ShardConfig::new(shards).unwrap(),
            IndexConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn build_partitions_everything() {
        let s = sharded(100, 4);
        assert_eq!(s.len(), 100);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_loads().iter().sum::<usize>(), 100);
        for g in 0..100 {
            let (shard, local) = s.locate(g).unwrap();
            assert_eq!(s.map_snapshot().global_of(shard, local), g);
        }
    }

    #[test]
    fn too_many_shards_for_corpus_is_typed() {
        let c = corpus(3);
        let err = ShardedIndex::build(&c, ShardConfig::new(8).unwrap(), IndexConfig::default())
            .unwrap_err();
        assert!(matches!(err, ShardError::EmptyShard(_)), "{err}");
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let s = sharded(40, 4);
        let extra = corpus(200); // different globals, same seed family
        let g = s.insert_series(&extra.series()[150]).unwrap();
        assert_eq!(g, 40);
        assert_eq!(s.len(), 41);
        let got = s.fetch_series(g).unwrap();
        assert_eq!(got.values(), extra.series()[150].values());
        assert!(s.delete_series(g).unwrap());
        assert!(!s.delete_series(g).unwrap(), "double delete reports false");
        assert_eq!(s.deleted_count(), 1);
        assert!(!s.delete_series(10_000).unwrap());
    }

    #[test]
    fn range_inserts_refill_tombstoned_shards() {
        let s = ShardedIndex::build(
            &corpus(40),
            ShardConfig {
                shards: 4,
                partitioner: PartitionerKind::Range,
            },
            IndexConfig::default(),
        )
        .unwrap();
        // Range chunks put globals 30..40 on shard 3; tombstone them all.
        for g in 30..40 {
            assert_eq!(s.locate(g).unwrap().0, 3);
            assert!(s.delete_series(g).unwrap());
        }
        // Mapped loads are still equal, but shard 3 has no live sequences,
        // so the least-*live*-loaded placement picks it.
        let extra = corpus(41);
        let g = s.insert_series(&extra.series()[40]).unwrap();
        assert_eq!(
            s.locate(g).unwrap().0,
            3,
            "insert should refill the tombstoned shard"
        );
    }

    #[test]
    fn counters_aggregate_across_shards() {
        let s = sharded(60, 3);
        s.reset_counters().unwrap();
        for g in [0usize, 20, 40] {
            let _ = s.fetch_series(g).unwrap();
        }
        let total = s.counters();
        assert_eq!(total.record_fetches, 3);
        let per: u64 = s
            .per_shard_counters()
            .iter()
            .map(|c| c.record_fetches)
            .sum();
        assert_eq!(per, total.record_fetches);
    }

    #[test]
    fn save_open_preserves_mapping() {
        let dir = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("save-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = sharded(50, 4);
        s.delete_series(7).unwrap();
        s.save(&dir).unwrap();
        let reopened = ShardedIndex::open(&dir, 16).unwrap();
        assert_eq!(reopened.len(), 50);
        assert_eq!(reopened.shard_count(), 4);
        assert_eq!(reopened.deleted_count(), 1);
        for g in 0..50 {
            assert_eq!(reopened.locate(g), s.locate(g));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_manifest_seq_len_mismatch() {
        let dir = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("seq-len-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sharded(20, 2).save(&dir).unwrap();
        let manifest = dir.join("sharding.txt");
        // Drop the seq_len line: the implicit 0 must not silently make
        // every query fail family validation against intact shard data.
        let stripped: String = std::fs::read_to_string(&manifest)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("seq_len"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&manifest, stripped).unwrap();
        let err = ShardedIndex::open(&dir, 16).unwrap_err();
        assert!(err.to_string().contains("seq_len"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_index_replays_tombstones() {
        let c = corpus(30);
        let mut single = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        single.delete_series(4).unwrap();
        single.delete_series(17).unwrap();
        let s = ShardedIndex::from_index(
            &single,
            ShardConfig::new(3).unwrap(),
            IndexConfig::default(),
        )
        .unwrap();
        assert_eq!(s.len(), 30);
        assert_eq!(s.deleted_count(), 2);
    }
}
