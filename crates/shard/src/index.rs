//! [`ShardedIndex`]: N independent [`SeqIndex`] shards behind per-shard
//! [`SharedIndex`] locks, with a stable global-ordinal ↔ (shard, local)
//! mapping.
//!
//! # Locking
//!
//! Each shard has its own `RwLock`, so a mutation write-locks exactly one
//! shard while the other N−1 keep serving reads (the starvation discipline
//! documented in [`simquery::shared`]). Global-ordinal assignment is
//! serialised by a dedicated insert gate — never by locking every shard —
//! and the global map takes its own brief write lock only *after* the
//! shard-local insert has succeeded, so concurrent readers translate
//! ordinals against a map that always describes fully-inserted sequences.
//! The converse — a shard read observing a local ordinal the reader's map
//! snapshot predates — is handled by the gather's defensive snapshot
//! translation (see [`crate::gather`]'s linearization docs).
//!
//! On a *durable* index the gate serves a second role: it serialises LSN
//! allocation with the append+fsync of every mutation — deletes included —
//! so that when a mutation is acknowledged, every lower LSN is already
//! durable. Without that, a crash could leave an LSN gap below an
//! acknowledged frame, and recovery (which stops at the first gap) would
//! drop the acknowledged mutation.

use crate::cfg::{PartitionerKind, ShardConfig};
use crate::partition::{Partitioner, ShardMap};
use pagestore::sync::{Mutex, RwLock};
use pagestore::{PageDevice, PageError};
use simquery::index::{AccessCounters, DeviceWrap, IndexConfig, SeqIndex};
use simquery::plan::QueryEpoch;
use simquery::report::QueryError;
use simquery::shared::{DurableError, SharedIndex};
use simquery::stats::StatsRegistry;
use simwal::{DirLock, FsyncPolicy, Wal, WalError, WalOp, WalStats};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tseries::{Corpus, TimeSeries};

/// Errors raised while building, opening, or durably mutating a sharded
/// index.
#[derive(Debug)]
pub enum ShardError {
    /// The corpus is empty or has zero-length sequences.
    EmptyCorpus,
    /// The partitioner assigned no sequences to this shard — with fewer
    /// sequences than shards (or a pathological hash on a tiny corpus) the
    /// split is meaningless; lower the shard count.
    EmptyShard(usize),
    /// Invalid configuration (shard count out of bounds, bad partitioner).
    Config(String),
    /// A page device failed during construction.
    Page(PageError),
    /// The write-ahead log failed (lock, append, epoch reconciliation).
    Wal(WalError),
    /// A snapshot load/save failed.
    Io(std::io::Error),
    /// An earlier WAL append failed after its mutation applied; further
    /// mutations and checkpoints are refused (see
    /// [`DurableError::Poisoned`]). Reopen the index to recover.
    Poisoned,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyCorpus => write!(f, "cannot shard an empty corpus"),
            Self::EmptyShard(s) => {
                write!(f, "shard {s} received no sequences; lower the shard count")
            }
            Self::Config(msg) => write!(f, "bad shard configuration: {msg}"),
            Self::Page(e) => write!(f, "page access failed building shard: {e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            Self::Poisoned => write!(f, "{}", DurableError::Poisoned),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Page(e) => Some(e),
            Self::Wal(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PageError> for ShardError {
    fn from(e: PageError) -> Self {
        Self::Page(e)
    }
}

impl From<WalError> for ShardError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<QueryError> for ShardError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Io(p) => Self::Page(p),
            other => Self::Config(other.to_string()),
        }
    }
}

impl From<DurableError> for ShardError {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Query(q) => q.into(),
            DurableError::Wal(w) => Self::Wal(w),
            DurableError::Io(io) => Self::Io(io),
            DurableError::Poisoned => Self::Poisoned,
            gap @ DurableError::Gap { .. } => Self::Config(gap.to_string()),
            fenced @ DurableError::Fenced { .. } => Self::Config(fenced.to_string()),
        }
    }
}

/// What sharded recovery did: aggregate of the per-shard WAL reports plus
/// the cross-shard merge outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Checkpoint epoch the index recovered at.
    pub epoch: u64,
    /// Frames replayed onto the snapshots, across all shards.
    pub replayed: usize,
    /// Frames dropped at an LSN gap (an unsynced sibling-shard tail) —
    /// everything after the first missing LSN is discarded to keep the
    /// recovered state an exact prefix of the mutation schedule.
    pub dropped: usize,
    /// Torn-tail bytes truncated, summed over the shard logs.
    pub truncated_bytes: u64,
    /// Frames discarded because a log's epoch predated its snapshot.
    pub stale_frames: usize,
}

/// A corpus partitioned across N independent [`SeqIndex`] shards.
pub struct ShardedIndex {
    shards: Vec<SharedIndex>,
    map: RwLock<ShardMap>,
    insert_gate: Mutex<()>,
    partitioner: Partitioner,
    kind: PartitionerKind,
    seq_len: usize,
    // Checkpoint epoch of `sharding.txt` (1 for fresh builds); the
    // authority every per-shard WAL is reconciled against.
    epoch: AtomicU64,
    // Next log sequence number. Globally monotone across shards; the
    // manifest records it at checkpoint so recovery knows where the
    // contiguous post-checkpoint LSN run must start.
    next_lsn: AtomicU64,
    // One WAL per shard when opened durably; frames are appended under
    // the owning shard's write guard, after the mutation has applied.
    wals: Option<Vec<Arc<Wal>>>,
    // Where checkpoints go (the directory the index was opened from).
    durable_dir: Option<PathBuf>,
    // Set when a WAL append failed after its shard mutation applied: the
    // LSN run has a hole, so acknowledging any later mutation would make
    // it unrecoverable (recovery stops at the gap). Mutations and
    // checkpoints are refused until the index is reopened.
    poisoned: AtomicBool,
    // Advisory lock on the index directory, held while open.
    _dir_lock: Option<DirLock>,
    // Planner statistics for the shard group (shard 0's tree shape is the
    // planning sample; dispatch and family statistics are group-wide).
    stats: Arc<StatsRegistry>,
    // Mutations acknowledged since open — the fine-grained half of
    // [`QueryEpoch`], bumped under the owning shard's write guard.
    mutations: AtomicU64,
}

impl fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("partitioner", &self.kind)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl ShardedIndex {
    /// Partitions `corpus` and builds one index per shard on plain
    /// in-memory disks. Every shard must receive at least one sequence.
    pub fn build(
        corpus: &Corpus,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
    ) -> Result<Self, ShardError> {
        Self::build_with(corpus, cfg, |_, sub| Ok(SeqIndex::build(sub, index_cfg)))
    }

    /// [`Self::build`] with caller-supplied page devices per shard — e.g.
    /// a [`pagestore::FaultyDisk`] on one shard for fault-injection tests.
    /// The factory receives the shard id and returns its
    /// `(tree, heap)` devices.
    pub fn build_on(
        corpus: &Corpus,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
        mut devices: impl FnMut(usize) -> (Arc<dyn PageDevice>, Arc<dyn PageDevice>),
    ) -> Result<Self, ShardError> {
        Self::build_with(corpus, cfg, |shard, sub| {
            let (tree, heap) = devices(shard);
            SeqIndex::build_on(sub, index_cfg, tree, heap)
        })
    }

    fn build_with(
        corpus: &Corpus,
        cfg: ShardConfig,
        mut build: impl FnMut(usize, &Corpus) -> Result<Option<SeqIndex>, PageError>,
    ) -> Result<Self, ShardError> {
        let cfg = cfg.validated().map_err(ShardError::Config)?;
        if corpus.is_empty() || corpus.series_len() == 0 {
            return Err(ShardError::EmptyCorpus);
        }
        let partitioner = Partitioner::new(cfg.partitioner, cfg.shards);
        let assignment = partitioner.assign_bulk(corpus.len());
        let map = ShardMap::from_assignment(cfg.shards, &assignment);

        let mut shards = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let globals = map.globals_of(shard);
            if globals.is_empty() {
                return Err(ShardError::EmptyShard(shard));
            }
            let names = globals.iter().map(|&g| corpus.names()[g].clone()).collect();
            let series = globals
                .iter()
                .map(|&g| corpus.series()[g].clone())
                .collect();
            let sub = Corpus::from_parts(names, series);
            let index = build(shard, &sub)?.ok_or(ShardError::EmptyShard(shard))?;
            shards.push(SharedIndex::new(index));
        }

        Ok(Self {
            shards,
            map: RwLock::new(map),
            insert_gate: Mutex::new(()),
            partitioner,
            kind: cfg.partitioner,
            seq_len: corpus.series_len(),
            epoch: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            wals: None,
            durable_dir: None,
            poisoned: AtomicBool::new(false),
            stats: Arc::new(StatsRegistry::new()),
            mutations: AtomicU64::new(0),
            _dir_lock: None,
        })
    }

    /// Repartitions an existing single index: fetches every record from
    /// its heap (tombstoned ordinals included — the heap is append-only),
    /// rebuilds N shards, and replays the tombstones. Global ordinals are
    /// preserved, so results match the source index exactly.
    pub fn from_index(
        index: &SeqIndex,
        cfg: ShardConfig,
        index_cfg: IndexConfig,
    ) -> Result<Self, ShardError> {
        let mut names = Vec::with_capacity(index.len());
        let mut series = Vec::with_capacity(index.len());
        for g in 0..index.len() {
            names.push(format!("s{g}"));
            series.push(index.fetch_series(g)?);
        }
        let sharded = Self::build(&Corpus::from_parts(names, series), cfg, index_cfg)?;
        for g in index.deleted_ordinals() {
            sharded.delete_series(g)?;
        }
        Ok(sharded)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard handles, for scatter execution and serving.
    pub fn shards(&self) -> &[SharedIndex] {
        &self.shards
    }

    /// The partitioner in effect.
    pub fn partitioner_kind(&self) -> PartitionerKind {
        self.kind
    }

    /// Length of every sequence.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Total sequences across all shards (tombstoned included).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no sequences are mapped (never — `build` rejects that).
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Tombstoned sequences across all shards.
    pub fn deleted_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().deleted_count()).sum()
    }

    /// Sequences per shard.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.map.read().loads()
    }

    /// Snapshot of the global map (brief read lock; the copy stays valid
    /// because mapped ordinals never move).
    pub fn map_snapshot(&self) -> ShardMap {
        self.map.read().clone()
    }

    /// `(shard, local)` of a global ordinal.
    pub fn locate(&self, global: usize) -> Option<(usize, usize)> {
        self.map.read().locate(global)
    }

    /// Appends a sequence, returning its global ordinal. On a durable
    /// index the mutation is applied, then logged to the owning shard's
    /// WAL *before* this returns (still under the shard's write guard, so
    /// log order is apply order).
    ///
    /// Only the receiving shard is write-locked; reads on the other N−1
    /// shards proceed throughout (see the module docs on locking).
    pub fn insert_series(&self, ts: &TimeSeries) -> Result<usize, DurableError> {
        let _gate = self.insert_gate.lock();
        if self.poisoned.load(Ordering::Acquire) {
            return Err(DurableError::Poisoned);
        }
        let (global, shard) = {
            let map = self.map.read();
            let g = map.len();
            let mut loads = map.loads();
            // Least-loaded placement (the Range policy) counts *live*
            // sequences: a shard full of tombstones has capacity, not load.
            if self.kind == PartitionerKind::Range {
                for (s, load) in loads.iter_mut().enumerate() {
                    *load = load.saturating_sub(self.shards[s].read().deleted_count());
                }
            }
            (g, self.partitioner.assign_insert(g, &loads))
        };
        let mut guard = self.shards[shard].write();
        let local = guard.insert_series(ts).map_err(DurableError::Query)?;
        if let Some(wals) = &self.wals {
            let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
            let logged = wals[shard].append(&WalOp::Insert {
                lsn,
                global: global as u64,
                local: local as u64,
                values: ts.values().to_vec(),
            });
            if let Err(e) = logged {
                // The insert is applied in the shard but missing from the
                // log, and its LSN is burnt. Record the mapping anyway so
                // the shard and the global map never diverge (reads,
                // save() and the manifest stay coherent), and poison the
                // index: acknowledging any later LSN would lose it at the
                // gap during recovery.
                drop(guard);
                self.poisoned.store(true, Ordering::Release);
                let mut map = self.map.write();
                let (g, l) = map.push(shard);
                debug_assert_eq!((g, l), (global, local), "gate must serialise ordinals");
                return Err(DurableError::Wal(e));
            }
        }
        drop(guard);
        let mut map = self.map.write();
        let (g, l) = map.push(shard);
        debug_assert_eq!((g, l), (global, local), "gate must serialise ordinals");
        self.mutations.fetch_add(1, Ordering::Release);
        Ok(global)
    }

    /// Tombstones a global ordinal. `Ok(false)` when out of range or
    /// already deleted. Write-locks only the owning shard; on a durable
    /// index an effective delete is logged before this returns.
    ///
    /// On a durable index the delete also holds the insert gate: LSN
    /// allocation and append+fsync must be serialised *across shards* for
    /// every mutation kind, or a delete's LSN n+1 could be durable and
    /// acknowledged while an insert's LSN n on a sibling shard is not —
    /// after a crash, recovery stops at the gap and drops the
    /// acknowledged delete, violating the `FsyncPolicy::Always` contract.
    pub fn delete_series(&self, global: usize) -> Result<bool, DurableError> {
        let _gate = self.wals.is_some().then(|| self.insert_gate.lock());
        if self.poisoned.load(Ordering::Acquire) {
            return Err(DurableError::Poisoned);
        }
        let Some((shard, local)) = self.locate(global) else {
            return Ok(false);
        };
        let mut guard = self.shards[shard].write();
        let deleted = guard.delete_series(local).map_err(DurableError::Query)?;
        if deleted {
            if let Some(wals) = &self.wals {
                let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
                let logged = wals[shard].append(&WalOp::Delete {
                    lsn,
                    global: global as u64,
                    local: local as u64,
                });
                if let Err(e) = logged {
                    // Applied-but-unlogged, LSN burnt: same hole as a
                    // failed insert append (the map needs no repair —
                    // deletes are tombstones).
                    drop(guard);
                    self.poisoned.store(true, Ordering::Release);
                    return Err(DurableError::Wal(e));
                }
            }
        }
        if deleted {
            self.mutations.fetch_add(1, Ordering::Release);
        }
        Ok(deleted)
    }

    /// Fetches a sequence's raw samples by global ordinal (a counted
    /// access on its shard).
    ///
    /// # Panics
    ///
    /// Panics when `global` was never mapped — callers gate on
    /// [`Self::len`] or [`Self::locate`] first, as with
    /// [`SeqIndex::fetch_series`]'s own out-of-range behaviour.
    pub fn fetch_series(&self, global: usize) -> Result<TimeSeries, QueryError> {
        let (shard, local) = self.locate(global).expect("unmapped global ordinal");
        Ok(self.shards[shard].read().fetch_series(local)?)
    }

    /// Access counters of each shard, in shard order — the per-fragment
    /// accounting the paper's cost model sums over.
    pub fn per_shard_counters(&self) -> Vec<AccessCounters> {
        self.shards.iter().map(|s| s.read().counters()).collect()
    }

    /// Aggregate access counters across all shards.
    pub fn counters(&self) -> AccessCounters {
        self.per_shard_counters()
            .into_iter()
            .fold(AccessCounters::default(), |acc, c| AccessCounters {
                node_reads: acc.node_reads + c.node_reads,
                record_page_reads: acc.record_page_reads + c.record_page_reads,
                record_fetches: acc.record_fetches + c.record_fetches,
            })
    }

    /// Zeroes every shard's counters and record pool (cold per-query
    /// accounting, as [`SeqIndex::reset_counters`]).
    pub fn reset_counters(&self) -> Result<(), PageError> {
        for s in &self.shards {
            s.read().reset_counters()?;
        }
        Ok(())
    }

    /// Persists all shards under `dir`: `shard-N/` subdirectories (see
    /// [`SeqIndex::save`]) plus a `sharding.txt` manifest recording the
    /// partitioner, the global assignment order, and the checkpoint
    /// epoch. The manifest — the only pointer to the shard snapshots — is
    /// replaced atomically (temp file + `rename`), and each shard's save
    /// is itself crash-atomic, so an interrupted save never destroys the
    /// previous good state.
    ///
    /// Mutations are quiesced for the duration (insert gate + every
    /// shard's read guard, taken up front): a concurrent insert landing
    /// between one shard's save and the manifest write would otherwise
    /// persist a snapshot whose assignment/`next_lsn` disagree with the
    /// shard contents — a state [`Self::open`] rejects.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let _gate = self.insert_gate.lock();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let epoch = self.epoch.load(Ordering::Relaxed);
        std::fs::create_dir_all(dir)?;
        for (i, g) in guards.iter().enumerate() {
            g.save_with_epoch(&dir.join(format!("shard-{i}")), epoch)?;
        }
        self.write_manifest(dir, epoch)
    }

    fn write_manifest(&self, dir: &Path, epoch: u64) -> std::io::Result<()> {
        let map = self.map.read();
        let mut meta = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(meta, "simshard v1");
        let _ = writeln!(meta, "shards {}", self.shards.len());
        let _ = writeln!(meta, "partitioner {}", self.kind);
        let _ = writeln!(meta, "seq_len {}", self.seq_len);
        let _ = writeln!(meta, "epoch {epoch}");
        let _ = writeln!(meta, "next_lsn {}", self.next_lsn.load(Ordering::Relaxed));
        let _ = writeln!(
            meta,
            "assignment {}",
            map.assignment()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        simwal::atomic_write(&dir.join("sharding.txt"), meta.as_bytes())
    }

    /// Reopens a directory written by [`Self::save`]. `heap_pool_pages`
    /// sizes each shard's record buffer pool. Takes the directory's
    /// advisory `LOCK` (kind `WouldBlock` when another process holds it).
    pub fn open(dir: &Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, |_| None, true)
    }

    /// [`Self::open`] without taking the root or per-shard `LOCK`s (see
    /// [`SeqIndex::open_read_only`]), for read-only consumers that must
    /// coexist with a serving process.
    pub fn open_read_only(dir: &Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, |_| None, false)
    }

    /// [`Self::open`] with caller-wrapped page devices per shard (see
    /// [`SeqIndex::open_with`]): the hook receives each shard id and may
    /// return a device wrapper — e.g. arming a [`pagestore::FaultyDisk`]
    /// on one shard's heap — or `None` for a plain open of that shard.
    pub fn open_with(
        dir: &Path,
        heap_pool_pages: usize,
        wrap: impl FnMut(usize) -> Option<DeviceWrap>,
    ) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, wrap, true)
    }

    fn open_impl(
        dir: &Path,
        heap_pool_pages: usize,
        mut wrap: impl FnMut(usize) -> Option<DeviceWrap>,
        take_lock: bool,
    ) -> std::io::Result<Self> {
        let lock = if take_lock {
            Some(DirLock::acquire(dir).map_err(simquery::index::wal_to_io)?)
        } else {
            None
        };
        let m = read_shard_manifest(dir)?;
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut shards = Vec::with_capacity(m.shards);
        for i in 0..m.shards {
            let shard_dir = dir.join(format!("shard-{i}"));
            let index = match (wrap(i), take_lock) {
                (None, true) => SeqIndex::open(&shard_dir, heap_pool_pages)?,
                (None, false) => SeqIndex::open_read_only(&shard_dir, heap_pool_pages)?,
                (Some(w), _) => SeqIndex::open_with(&shard_dir, heap_pool_pages, w)?,
            };
            shards.push(SharedIndex::new(index));
        }
        let map = ShardMap::from_assignment(m.shards, &m.assignment);
        for (i, s) in shards.iter().enumerate() {
            if s.read().len() != map.globals_of(i).len() {
                return Err(bad(format!(
                    "shard {i} holds {} sequences but the manifest maps {}",
                    s.read().len(),
                    map.globals_of(i).len()
                )));
            }
        }
        // A missing or corrupt seq_len line must not silently poison every
        // future family validation; the shards know the true length.
        let disk_len = shards[0].read().seq_len();
        if m.seq_len != disk_len {
            return Err(bad(format!(
                "manifest seq_len {} does not match the on-disk sequence length {disk_len}",
                m.seq_len
            )));
        }
        Ok(Self {
            shards,
            map: RwLock::new(map),
            insert_gate: Mutex::new(()),
            partitioner: Partitioner::new(m.kind, m.shards),
            kind: m.kind,
            seq_len: m.seq_len,
            epoch: AtomicU64::new(m.epoch),
            next_lsn: AtomicU64::new(m.next_lsn),
            wals: None,
            durable_dir: None,
            poisoned: AtomicBool::new(false),
            stats: Arc::new(StatsRegistry::new()),
            mutations: AtomicU64::new(0),
            _dir_lock: lock,
        })
    }

    /// Opens a persisted sharded index *with one write-ahead log per
    /// shard* under `wal_root` (`wal_root/shard-N/`), each reconciled
    /// against the `sharding.txt` epoch, and replays the merged log tails
    /// on top of the shard snapshots.
    ///
    /// Frames from all shards are merged by LSN and replayed in that
    /// order; replay stops at the first missing LSN (a tail some shard
    /// never fsynced), so the recovered index is an exact prefix of the
    /// acknowledged mutation schedule. Replay is idempotent against
    /// half-checkpoint states: a frame whose effects a shard snapshot
    /// already holds re-extends the global map without re-applying.
    /// When frames were dropped at a gap the index is checkpointed
    /// immediately, folding the recovered prefix into a fresh epoch.
    pub fn open_durable(
        dir: &Path,
        wal_root: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
    ) -> Result<(Self, ShardRecovery), ShardError> {
        Self::open_durable_impl(dir, wal_root, heap_pool_pages, policy, |_| None, false)
    }

    /// [`Self::open_durable`] with caller-wrapped page devices per shard,
    /// so WAL replay itself runs against armed [`pagestore::FaultyDisk`]s.
    /// Replay faults surface as typed errors ([`ShardError::Page`]) —
    /// never a panic. No auto-checkpoint happens on such an index (its
    /// devices are surrendered to the wrappers), so gap-dropped frames
    /// stay in the logs for the next unfaulted open.
    pub fn open_durable_with(
        dir: &Path,
        wal_root: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
        wrap: impl FnMut(usize) -> Option<DeviceWrap>,
    ) -> Result<(Self, ShardRecovery), ShardError> {
        Self::open_durable_impl(dir, wal_root, heap_pool_pages, policy, wrap, true)
    }

    fn open_durable_impl(
        dir: &Path,
        wal_root: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
        mut wrap: impl FnMut(usize) -> Option<DeviceWrap>,
        faulted: bool,
    ) -> Result<(Self, ShardRecovery), ShardError> {
        let lock = DirLock::acquire(dir)?;
        let m = read_shard_manifest(dir)?;
        let bad = |msg: String| ShardError::Config(msg);

        // Shard snapshots. During recovery a shard may legitimately hold
        // *more* sequences than the manifest maps (its snapshot comes
        // from a checkpoint the crash interrupted before the manifest
        // bump); the surplus must be covered by replayed frames, checked
        // after replay. Fewer is unrecoverable.
        let mut indexes = Vec::with_capacity(m.shards);
        for i in 0..m.shards {
            let shard_dir = dir.join(format!("shard-{i}"));
            let index = match wrap(i) {
                None => SeqIndex::open(&shard_dir, heap_pool_pages)?,
                Some(w) => SeqIndex::open_with(&shard_dir, heap_pool_pages, w)?,
            };
            indexes.push(index);
        }
        let mut map = ShardMap::from_assignment(m.shards, &m.assignment);
        for (i, idx) in indexes.iter().enumerate() {
            if idx.len() < map.globals_of(i).len() {
                return Err(bad(format!(
                    "shard {i} holds {} sequences but the manifest maps {}",
                    idx.len(),
                    map.globals_of(i).len()
                )));
            }
        }

        // Per-shard logs, all reconciled against the manifest's epoch —
        // the authority; a shard snapshot stamped epoch+1 is a
        // half-finished checkpoint whose WAL still holds the frames.
        let mut recovery = ShardRecovery {
            epoch: m.epoch,
            ..Default::default()
        };
        let mut wals = Vec::with_capacity(m.shards);
        let mut merged: Vec<(usize, WalOp)> = Vec::new();
        for i in 0..m.shards {
            let (wal, ops, report) =
                Wal::open(&wal_root.join(format!("shard-{i}")), policy, m.epoch)?;
            recovery.truncated_bytes += report.truncated_bytes;
            recovery.stale_frames += report.stale_frames;
            merged.extend(ops.into_iter().map(|op| (i, op)));
            wals.push(Arc::new(wal));
        }
        merged.sort_by_key(|(_, op)| op.lsn());

        // Replay in global LSN order, stopping at the first gap.
        let mut expected = m.next_lsn;
        let mut replayed = 0usize;
        'replay: for (shard, op) in &merged {
            if op.lsn() < expected {
                // Absorbed by a newer snapshot of this very directory.
                recovery.stale_frames += 1;
                continue;
            }
            if op.lsn() > expected {
                break; // gap: the prefix ends here
            }
            let s = *shard;
            match op {
                WalOp::Insert {
                    global,
                    local,
                    values,
                    ..
                } => {
                    let (g, l) = (*global as usize, *local as usize);
                    if g > map.len() || l > indexes[s].len() {
                        break 'replay;
                    }
                    if l == indexes[s].len() {
                        indexes[s]
                            .insert_series(&TimeSeries::new(values.clone()))
                            .map_err(ShardError::from)?;
                    }
                    if g == map.len() {
                        let (pg, pl) = map.push(s);
                        if (pg, pl) != (g, l) {
                            return Err(bad(format!(
                                "wal frame for global {g} (shard {s}, local {l}) does not \
                                 extend the manifest mapping (next is {pg}/{pl})"
                            )));
                        }
                    } else if map.locate(g) != Some((s, l)) {
                        return Err(bad(format!(
                            "wal frame for global {g} contradicts the manifest mapping"
                        )));
                    }
                }
                WalOp::Delete { global, local, .. } => {
                    let (g, l) = (*global as usize, *local as usize);
                    if g >= map.len() {
                        break 'replay;
                    }
                    // Idempotent: Ok(false) when the snapshot already
                    // carries the tombstone.
                    indexes[s].delete_series(l).map_err(ShardError::from)?;
                }
            }
            expected += 1;
            replayed += 1;
        }
        recovery.replayed = replayed;
        recovery.dropped = merged.iter().filter(|(_, op)| op.lsn() >= expected).count();

        // After replay every surplus snapshot sequence must be mapped.
        for (i, idx) in indexes.iter().enumerate() {
            if idx.len() != map.globals_of(i).len() {
                return Err(bad(format!(
                    "shard {i} holds {} sequences but manifest+wal map {} — \
                     the log does not belong to this index",
                    idx.len(),
                    map.globals_of(i).len()
                )));
            }
        }

        let sharded = Self {
            shards: indexes.into_iter().map(SharedIndex::new).collect(),
            map: RwLock::new(map),
            insert_gate: Mutex::new(()),
            partitioner: Partitioner::new(m.kind, m.shards),
            kind: m.kind,
            seq_len: m.seq_len,
            epoch: AtomicU64::new(m.epoch),
            next_lsn: AtomicU64::new(expected),
            wals: Some(wals),
            durable_dir: Some(dir.to_path_buf()),
            poisoned: AtomicBool::new(false),
            stats: Arc::new(StatsRegistry::new()),
            mutations: AtomicU64::new(0),
            _dir_lock: Some(lock),
        };
        if recovery.dropped > 0 && !faulted {
            // Dropped frames would collide with the LSNs of future
            // appends; fold the recovered prefix into a fresh epoch,
            // which resets every shard log.
            sharded.checkpoint()?;
        }
        Ok((sharded, recovery))
    }

    /// Whether this index logs mutations to per-shard WALs.
    pub fn is_durable(&self) -> bool {
        self.wals.is_some()
    }

    /// The planner-statistics registry of this shard group.
    pub fn stats(&self) -> &Arc<StatsRegistry> {
        &self.stats
    }

    /// The cache epoch of the current state: checkpoint epoch plus the
    /// mutation counter (see [`simquery::plan::QueryEpoch`]).
    pub fn query_epoch(&self) -> QueryEpoch {
        QueryEpoch {
            epoch: self.epoch.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Acquire),
        }
    }

    /// Whether an earlier WAL append failure poisoned this index (see
    /// [`ShardError::Poisoned`]). Queries still serve; mutations and
    /// checkpoints are rejected until the index is reopened.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Aggregate WAL counters across shards, when durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        let wals = self.wals.as_ref()?;
        Some(wals.iter().fold(WalStats::default(), |acc, w| {
            let s = w.stats();
            WalStats {
                appends: acc.appends + s.appends,
                fsyncs: acc.fsyncs + s.fsyncs,
                replayed: acc.replayed + s.replayed,
                truncated_bytes: acc.truncated_bytes + s.truncated_bytes,
            }
        }))
    }

    /// Forces every shard log to stable storage (the `SYNC` op).
    /// `Ok(false)` when the index has no WALs.
    pub fn sync_wal(&self) -> Result<bool, ShardError> {
        let Some(wals) = &self.wals else {
            return Ok(false);
        };
        for w in wals {
            w.sync()?;
        }
        Ok(true)
    }

    /// Checkpoints a durable index: quiesces all mutations (insert gate +
    /// every shard's write guard), syncs the logs, saves every shard
    /// atomically stamped with the next epoch, commits the epoch in
    /// `sharding.txt` (the atomic commit point), then resets every shard
    /// log. Returns the new epoch, or `None` for a non-durable index.
    ///
    /// A crash before the manifest commit leaves epoch-N snapshots-plus-
    /// logs (replayed idempotently); a crash after it leaves stale
    /// epoch-N logs under an epoch-N+1 manifest (discarded at open).
    pub fn checkpoint(&self) -> Result<Option<u64>, ShardError> {
        let (Some(wals), Some(dir)) = (&self.wals, &self.durable_dir) else {
            return Ok(None);
        };
        let _gate = self.insert_gate.lock();
        // A poisoned index holds an applied-but-unlogged mutation that
        // was never acknowledged; folding it into a snapshot would make
        // the recovered state more than the acknowledged prefix.
        if self.poisoned.load(Ordering::Acquire) {
            return Err(ShardError::Poisoned);
        }
        let guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        for w in wals {
            w.sync()?;
        }
        let new_epoch = self.epoch.load(Ordering::Relaxed) + 1;
        std::fs::create_dir_all(dir)?;
        for (i, g) in guards.iter().enumerate() {
            g.save_with_epoch(&dir.join(format!("shard-{i}")), new_epoch)?;
        }
        self.write_manifest(dir, new_epoch)?;
        for w in wals {
            w.install_epoch(new_epoch)?;
        }
        self.epoch.store(new_epoch, Ordering::Relaxed);
        Ok(Some(new_epoch))
    }
}

/// Parsed `sharding.txt`.
struct ShardManifest {
    shards: usize,
    kind: PartitionerKind,
    seq_len: usize,
    assignment: Vec<usize>,
    epoch: u64,
    next_lsn: u64,
}

fn read_shard_manifest(dir: &Path) -> std::io::Result<ShardManifest> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let meta = std::fs::read_to_string(dir.join("sharding.txt"))?;
    let mut lines = meta.lines();
    if lines.next() != Some("simshard v1") {
        return Err(bad("not a simshard directory".into()));
    }
    let mut m = ShardManifest {
        shards: 0,
        kind: PartitionerKind::Hash,
        seq_len: 0,
        assignment: Vec::new(),
        // Pre-durability manifests carry neither line; they are at the
        // initial epoch with no LSNs ever allocated.
        epoch: 1,
        next_lsn: 1,
    };
    for line in lines {
        match line.split_once(' ') {
            Some(("shards", v)) => {
                m.shards = v
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad shards: {e}")))?;
            }
            Some(("partitioner", v)) => {
                m.kind = v.trim().parse().map_err(bad)?;
            }
            Some(("seq_len", v)) => {
                m.seq_len = v
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad seq_len: {e}")))?;
            }
            Some(("epoch", v)) => {
                m.epoch = v
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad epoch: {e}")))?;
            }
            Some(("next_lsn", v)) => {
                m.next_lsn = v
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad next_lsn: {e}")))?;
            }
            Some(("assignment", v)) if !v.trim().is_empty() => {
                m.assignment = v
                    .trim()
                    .split(',')
                    .map(|s| s.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| bad(format!("bad assignment entry: {e}")))?;
            }
            _ => {}
        }
    }
    if m.shards == 0 || m.shards > crate::cfg::MAX_SHARDS {
        return Err(bad(format!("shard count {} out of range", m.shards)));
    }
    if m.assignment.iter().any(|&s| s >= m.shards) {
        return Err(bad("assignment references a missing shard".into()));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseries::CorpusKind;

    fn corpus(n: usize) -> Corpus {
        Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 11)
    }

    fn sharded(n: usize, shards: usize) -> ShardedIndex {
        ShardedIndex::build(
            &corpus(n),
            ShardConfig::new(shards).unwrap(),
            IndexConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn build_partitions_everything() {
        let s = sharded(100, 4);
        assert_eq!(s.len(), 100);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_loads().iter().sum::<usize>(), 100);
        for g in 0..100 {
            let (shard, local) = s.locate(g).unwrap();
            assert_eq!(s.map_snapshot().global_of(shard, local), g);
        }
    }

    #[test]
    fn too_many_shards_for_corpus_is_typed() {
        let c = corpus(3);
        let err = ShardedIndex::build(&c, ShardConfig::new(8).unwrap(), IndexConfig::default())
            .unwrap_err();
        assert!(matches!(err, ShardError::EmptyShard(_)), "{err}");
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let s = sharded(40, 4);
        let extra = corpus(200); // different globals, same seed family
        let g = s.insert_series(&extra.series()[150]).unwrap();
        assert_eq!(g, 40);
        assert_eq!(s.len(), 41);
        let got = s.fetch_series(g).unwrap();
        assert_eq!(got.values(), extra.series()[150].values());
        assert!(s.delete_series(g).unwrap());
        assert!(!s.delete_series(g).unwrap(), "double delete reports false");
        assert_eq!(s.deleted_count(), 1);
        assert!(!s.delete_series(10_000).unwrap());
    }

    #[test]
    fn range_inserts_refill_tombstoned_shards() {
        let s = ShardedIndex::build(
            &corpus(40),
            ShardConfig {
                shards: 4,
                partitioner: PartitionerKind::Range,
            },
            IndexConfig::default(),
        )
        .unwrap();
        // Range chunks put globals 30..40 on shard 3; tombstone them all.
        for g in 30..40 {
            assert_eq!(s.locate(g).unwrap().0, 3);
            assert!(s.delete_series(g).unwrap());
        }
        // Mapped loads are still equal, but shard 3 has no live sequences,
        // so the least-*live*-loaded placement picks it.
        let extra = corpus(41);
        let g = s.insert_series(&extra.series()[40]).unwrap();
        assert_eq!(
            s.locate(g).unwrap().0,
            3,
            "insert should refill the tombstoned shard"
        );
    }

    #[test]
    fn counters_aggregate_across_shards() {
        let s = sharded(60, 3);
        s.reset_counters().unwrap();
        for g in [0usize, 20, 40] {
            let _ = s.fetch_series(g).unwrap();
        }
        let total = s.counters();
        assert_eq!(total.record_fetches, 3);
        let per: u64 = s
            .per_shard_counters()
            .iter()
            .map(|c| c.record_fetches)
            .sum();
        assert_eq!(per, total.record_fetches);
    }

    #[test]
    fn save_open_preserves_mapping() {
        let dir = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("save-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = sharded(50, 4);
        s.delete_series(7).unwrap();
        s.save(&dir).unwrap();
        let reopened = ShardedIndex::open(&dir, 16).unwrap();
        assert_eq!(reopened.len(), 50);
        assert_eq!(reopened.shard_count(), 4);
        assert_eq!(reopened.deleted_count(), 1);
        for g in 0..50 {
            assert_eq!(reopened.locate(g), s.locate(g));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_manifest_seq_len_mismatch() {
        let dir = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("seq-len-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sharded(20, 2).save(&dir).unwrap();
        let manifest = dir.join("sharding.txt");
        // Drop the seq_len line: the implicit 0 must not silently make
        // every query fail family validation against intact shard data.
        let stripped: String = std::fs::read_to_string(&manifest)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("seq_len"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&manifest, stripped).unwrap();
        let err = ShardedIndex::open(&dir, 16).unwrap_err();
        assert!(err.to_string().contains("seq_len"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_failure_poisons_but_keeps_map_consistent() {
        let root = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let idx_dir = root.join("idx");
        let wal_dir = root.join("wal");
        sharded(20, 2).save(&idx_dir).unwrap();
        let (s, _) =
            ShardedIndex::open_durable(&idx_dir, &wal_dir, 16, FsyncPolicy::Always).unwrap();
        let extra = corpus(30);
        s.insert_series(&extra.series()[20]).unwrap();
        for w in s.wals.as_ref().unwrap() {
            w.arm_append_fault();
        }
        let err = s.insert_series(&extra.series()[21]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)), "{err}");
        assert!(s.is_poisoned());
        // The failed insert stays applied *and mapped*, so every shard
        // still agrees with the global map …
        assert_eq!(s.len(), 22);
        let snapshot = s.map_snapshot();
        for (i, sh) in s.shards().iter().enumerate() {
            assert_eq!(sh.read().len(), snapshot.globals_of(i).len());
        }
        // … and every further mutation/checkpoint is refused, so no LSN
        // above the hole can ever be acknowledged.
        assert!(matches!(
            s.insert_series(&extra.series()[22]).unwrap_err(),
            DurableError::Poisoned
        ));
        assert!(matches!(
            s.delete_series(0).unwrap_err(),
            DurableError::Poisoned
        ));
        assert!(matches!(s.checkpoint().unwrap_err(), ShardError::Poisoned));
        drop(s);
        // A reopen recovers exactly the acknowledged prefix and resumes.
        let (s, rep) =
            ShardedIndex::open_durable(&idx_dir, &wal_dir, 16, FsyncPolicy::Always).unwrap();
        assert_eq!(rep.replayed, 1, "only the acknowledged insert replays");
        assert_eq!(
            rep.dropped, 0,
            "the torn frame was rewound, not left behind"
        );
        assert_eq!(s.len(), 21);
        s.insert_series(&extra.series()[21]).unwrap();
        drop(s);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn save_quiesces_concurrent_inserts() {
        let root = std::env::temp_dir()
            .join("simshard-tests")
            .join(format!("save-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let s = sharded(24, 4);
        let extra = corpus(64);
        std::thread::scope(|scope| {
            let (s, extra) = (&s, &extra);
            scope.spawn(move || {
                for i in 24..64 {
                    s.insert_series(&extra.series()[i]).unwrap();
                }
            });
            for round in 0..8 {
                let dir = root.join(format!("snap-{round}"));
                s.save(&dir).unwrap();
                // Every snapshot must be internally consistent: open
                // rejects a manifest that disagrees with shard contents,
                // which an insert racing the shard saves would produce.
                ShardedIndex::open(&dir, 16).unwrap();
            }
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn from_index_replays_tombstones() {
        let c = corpus(30);
        let mut single = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        single.delete_series(4).unwrap();
        single.delete_series(17).unwrap();
        let s = ShardedIndex::from_index(
            &single,
            ShardConfig::new(3).unwrap(),
            IndexConfig::default(),
        )
        .unwrap();
        assert_eq!(s.len(), 30);
        assert_eq!(s.deleted_count(), 2);
    }
}
