//! Shard configuration: one place that parses and validates the shard
//! count and partitioner choice, shared by `simserved --shards`, the
//! `simseq shard` subcommands, and the benches — so the accepted spellings
//! and limits cannot drift between entry points.

use std::fmt;
use std::str::FromStr;

/// Hard ceiling on the shard count: each shard carries its own R*-tree,
/// buffer pool, and scatter thread, so values past this are configuration
/// mistakes, not scaling.
pub const MAX_SHARDS: usize = 64;

/// How global ordinals are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionerKind {
    /// `splitmix64(global) % shards` — spreads any insertion pattern
    /// uniformly; the default.
    #[default]
    Hash,
    /// `global % shards` — deterministic striping, useful when ordinals
    /// arrive in an order worth interleaving exactly.
    RoundRobin,
    /// Contiguous chunks at build time; live inserts go to the shard with
    /// the fewest live (non-tombstoned) sequences, ties to the lowest id.
    Range,
}

impl PartitionerKind {
    /// Every accepted spelling, for help text.
    pub const NAMES: [&'static str; 3] = ["hash", "round-robin", "range"];
}

impl FromStr for PartitionerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hash" => Ok(Self::Hash),
            "round-robin" | "roundrobin" | "rr" => Ok(Self::RoundRobin),
            "range" => Ok(Self::Range),
            other => Err(format!(
                "unknown partitioner '{other}' (expected one of: {})",
                Self::NAMES.join(", ")
            )),
        }
    }
}

impl fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Hash => "hash",
            Self::RoundRobin => "round-robin",
            Self::Range => "range",
        })
    }
}

/// Validated sharding configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards, `1..=MAX_SHARDS`.
    pub shards: usize,
    /// Global-ordinal → shard assignment policy.
    pub partitioner: PartitionerKind,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            partitioner: PartitionerKind::default(),
        }
    }
}

impl ShardConfig {
    /// A validated config with the default partitioner.
    pub fn new(shards: usize) -> Result<Self, String> {
        Self {
            shards,
            partitioner: PartitionerKind::default(),
        }
        .validated()
    }

    /// Parses the raw `--shards` / `--partitioner` strings as the CLI and
    /// server option parsers hand them over.
    pub fn parse(shards: &str, partitioner: Option<&str>) -> Result<Self, String> {
        let shards: usize = shards
            .trim()
            .parse()
            .map_err(|_| format!("invalid shard count '{shards}'"))?;
        let partitioner = match partitioner {
            Some(p) => p.parse()?,
            None => PartitionerKind::default(),
        };
        Self {
            shards,
            partitioner,
        }
        .validated()
    }

    /// Bounds-checks the shard count.
    pub fn validated(self) -> Result<Self, String> {
        if self.shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.shards > MAX_SHARDS {
            return Err(format!(
                "shard count {} exceeds the maximum of {MAX_SHARDS}",
                self.shards
            ));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spellings() {
        for (s, want) in [
            ("hash", PartitionerKind::Hash),
            ("ROUND-ROBIN", PartitionerKind::RoundRobin),
            ("rr", PartitionerKind::RoundRobin),
            (" range ", PartitionerKind::Range),
        ] {
            assert_eq!(s.parse::<PartitionerKind>().unwrap(), want);
        }
        assert!("mod7".parse::<PartitionerKind>().is_err());
    }

    #[test]
    fn display_roundtrips() {
        for k in [
            PartitionerKind::Hash,
            PartitionerKind::RoundRobin,
            PartitionerKind::Range,
        ] {
            assert_eq!(k.to_string().parse::<PartitionerKind>().unwrap(), k);
        }
    }

    #[test]
    fn validates_bounds() {
        assert!(ShardConfig::new(0).is_err());
        assert!(ShardConfig::new(MAX_SHARDS + 1).is_err());
        assert_eq!(ShardConfig::new(8).unwrap().shards, 8);
        assert!(ShardConfig::parse("4", Some("range")).is_ok());
        assert!(ShardConfig::parse("four", None).is_err());
        assert!(ShardConfig::parse("4", Some("bogus")).is_err());
    }
}
