//! # simshard — sharded index subsystem
//!
//! Partitions a corpus across N independent [`simquery::index::SeqIndex`]
//! shards, each behind its own [`simquery::shared::SharedIndex`] lock, and
//! executes every query class by scatter-gather:
//!
//! - **Partitioning** ([`cfg`], [`partition`]): a validated
//!   [`ShardConfig`] picks the shard count and a [`PartitionerKind`]
//!   (hash-by-ordinal default, round-robin, range); the [`ShardMap`]
//!   records the stable global-ordinal ↔ (shard, local-ordinal) mapping.
//! - **Storage** ([`index`]): [`ShardedIndex`] builds, persists, reopens,
//!   and mutates the shard set; an insert write-locks exactly one shard
//!   while the other N−1 keep serving reads.
//! - **Execution** ([`gather`]): range/MT/ST/scan queries scatter to all
//!   shards on scoped threads and merge exactly; global kNN runs shards
//!   sequentially, propagating the running k-th distance bound so later
//!   shards prune — exact against the single-index answer, with a
//!   deterministic (distance, global-ordinal) tie-break.
//! - **Accounting**: per-shard [`simquery::index::AccessCounters`] and
//!   [`simquery::report::EngineMetrics`] aggregate across shards, so the
//!   paper's disk-access figures stay reproducible per fragment.

pub mod cfg;
pub mod gather;
pub mod index;
pub mod partition;

pub use cfg::{PartitionerKind, ShardConfig, MAX_SHARDS};
pub use gather::Engine;
pub use index::{ShardError, ShardRecovery, ShardedIndex};
pub use partition::{Partitioner, ShardMap};
