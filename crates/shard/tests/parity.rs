//! Sharded-vs-single parity suite (the exact-answer guarantee).
//!
//! The same seeded corpus is indexed once as a single [`SeqIndex`] and as
//! a [`ShardedIndex`] with N ∈ {1, 2, 4, 8}; every query class must
//! return the identical result set. Only lossless filter policies
//! (`Safe`, `Adaptive`) are exercised: the `Paper` policy's angle windows
//! may falsely dismiss, and those dismissals legitimately depend on tree
//! layout, which sharding changes.

use pagestore::{Disk, FaultPlan, FaultyDisk, PageDevice};
use simquery::engine::{knn as knn_engine, mtindex, seqscan, stindex};
use simquery::index::{IndexConfig, SeqIndex};
use simquery::query::{FilterPolicy, RangeSpec};
use simquery::report::QueryError;
use simquery::transform::Family;
use simshard::{gather, Engine, ShardConfig, ShardedIndex};
use std::sync::Arc;
use tseries::{Corpus, CorpusKind, TimeSeries};

const N: usize = 120;
const LEN: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus() -> Corpus {
    Corpus::generate(CorpusKind::SyntheticWalks, N, LEN, 4242)
}

fn single(c: &Corpus) -> SeqIndex {
    SeqIndex::build(c, IndexConfig::default()).unwrap()
}

fn sharded(c: &Corpus, shards: usize) -> ShardedIndex {
    ShardedIndex::build(c, ShardConfig::new(shards).unwrap(), IndexConfig::default()).unwrap()
}

fn specs() -> Vec<RangeSpec> {
    vec![
        RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe),
        RangeSpec::correlation(0.95).with_policy(FilterPolicy::Adaptive),
        RangeSpec::euclidean(3.0).with_policy(FilterPolicy::Safe),
        RangeSpec::euclidean(2.0).with_policy(FilterPolicy::Adaptive),
    ]
}

fn single_range(
    index: &SeqIndex,
    engine: Engine,
    q: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Vec<(usize, usize)> {
    match engine {
        Engine::Mt => mtindex::range_query(index, q, family, spec),
        Engine::St => stindex::range_query(index, q, family, spec),
        Engine::Scan => seqscan::range_query(index, q, family, spec),
    }
    .unwrap()
    .sorted_pairs()
}

#[test]
fn range_queries_identical_across_shard_counts() {
    let c = corpus();
    let reference = single(&c);
    let family = Family::moving_averages(2..=7, LEN);
    for shards in SHARD_COUNTS {
        let s = sharded(&c, shards);
        for engine in [Engine::Mt, Engine::St, Engine::Scan] {
            for spec in specs() {
                for qi in [3usize, 57, 111] {
                    let q = &c.series()[qi];
                    let want = single_range(&reference, engine, q, &family, &spec);
                    let got = gather::range_query(&s, engine, q, &family, &spec)
                        .unwrap()
                        .sorted_pairs();
                    assert_eq!(
                        got, want,
                        "divergence: {shards} shards, {engine:?}, {spec:?}, query {qi}"
                    );
                }
            }
        }
    }
}

/// Canonical kNN ordering for comparison: (distance, ordinal).
fn canon(matches: &[simquery::report::Match]) -> Vec<(usize, usize)> {
    let mut v: Vec<_> = matches.to_vec();
    v.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.seq.cmp(&b.seq)));
    v.iter().map(|m| (m.seq, m.transform)).collect()
}

#[test]
fn knn_identical_across_shard_counts() {
    let c = corpus();
    let reference = single(&c);
    let family = Family::moving_averages(2..=7, LEN);
    for shards in SHARD_COUNTS {
        let s = sharded(&c, shards);
        for qi in [0usize, 44, 88] {
            for k in [1usize, 5, 12] {
                let q = &c.series()[qi];
                let (want, _) = knn_engine::knn(&reference, q, &family, k).unwrap();
                let (got, _) = gather::knn(&s, q, &family, k).unwrap();
                assert_eq!(
                    canon(&got),
                    canon(&want),
                    "kNN divergence: {shards} shards, query {qi}, k={k}"
                );
                // Distances must agree exactly: both paths score the same
                // series with the same f64 operations.
                for (g, w) in canon(&got).iter().zip(canon(&want).iter()) {
                    assert_eq!(g, w);
                }
                let mut wd: Vec<f64> = want.iter().map(|m| m.dist).collect();
                let mut gd: Vec<f64> = got.iter().map(|m| m.dist).collect();
                wd.sort_by(f64::total_cmp);
                gd.sort_by(f64::total_cmp);
                assert_eq!(wd, gd);
            }
        }
    }
}

#[test]
fn parity_survives_mutations() {
    let c = corpus();
    let extra = Corpus::generate(CorpusKind::SyntheticWalks, 10, LEN, 777);
    let mut reference = single(&c);
    let family = Family::moving_averages(2..=6, LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
    for shards in [2usize, 4] {
        let s = sharded(&c, shards);
        // Same mutation schedule on both sides.
        for ts in extra.series() {
            let g_single = reference.insert_series(ts).unwrap();
            let g_sharded = s.insert_series(ts).unwrap();
            assert_eq!(g_single, g_sharded, "global ordinals must stay aligned");
        }
        for victim in [5usize, 60, N + 3] {
            assert!(reference.delete_series(victim).unwrap());
            assert!(s.delete_series(victim).unwrap());
        }
        for qi in [8usize, 90] {
            let q = &c.series()[qi];
            for engine in [Engine::Mt, Engine::St, Engine::Scan] {
                let want = single_range(&reference, engine, q, &family, &spec);
                let got = gather::range_query(&s, engine, q, &family, &spec)
                    .unwrap()
                    .sorted_pairs();
                assert_eq!(got, want, "post-mutation divergence at {shards} shards");
            }
            let (want, _) = knn_engine::knn(&reference, q, &family, 6).unwrap();
            let (got, _) = gather::knn(&s, q, &family, 6).unwrap();
            assert_eq!(canon(&got), canon(&want));
        }
        // Undo the reference mutations for the next shard count.
        reference = single(&c);
    }
}

/// A sharded index whose shard 1 runs on faulty devices.
fn sharded_with_fault(
    c: &Corpus,
    shards: usize,
) -> (ShardedIndex, Arc<FaultyDisk>, Arc<FaultyDisk>) {
    let tree = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
    let heap = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
    let (t, h) = (Arc::clone(&tree), Arc::clone(&heap));
    let s = ShardedIndex::build_on(
        c,
        ShardConfig::new(shards).unwrap(),
        IndexConfig::default(),
        move |shard| {
            if shard == 1 {
                (
                    Arc::clone(&t) as Arc<dyn PageDevice>,
                    Arc::clone(&h) as Arc<dyn PageDevice>,
                )
            } else {
                (
                    Arc::new(Disk::new()) as Arc<dyn PageDevice>,
                    Arc::new(Disk::new()) as Arc<dyn PageDevice>,
                )
            }
        },
    )
    .unwrap();
    (s, tree, heap)
}

#[test]
fn faulted_shard_yields_typed_error_or_exact_result() {
    let c = corpus();
    let reference = single(&c);
    let family = Family::moving_averages(2..=6, LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
    let (s, tree, heap) = sharded_with_fault(&c, 4);
    let q = &c.series()[12];
    let want = single_range(&reference, Engine::Mt, q, &family, &spec);
    let (want_knn, _) = knn_engine::knn(&reference, q, &family, 5).unwrap();

    let mut errors = 0usize;
    let mut exact = 0usize;
    // Sweep the fault point across the access schedule: early faults hit,
    // late ones fall past the query's access count and leave it exact.
    for at in [1u64, 2, 3, 5, 8, 13, 21, 500] {
        tree.arm(FaultPlan::new().read_error_at(at));
        heap.arm(FaultPlan::new().read_error_at(at));
        s.reset_counters().unwrap();
        match gather::range_query(&s, Engine::Mt, q, &family, &spec) {
            Ok(r) => {
                assert_eq!(
                    r.sorted_pairs(),
                    want,
                    "armed fault produced a wrong answer"
                );
                exact += 1;
            }
            Err(QueryError::Io(_)) => errors += 1,
            Err(e) => panic!("unexpected error class under fault: {e}"),
        }
        match gather::knn(&s, q, &family, 5) {
            Ok((got, _)) => assert_eq!(canon(&got), canon(&want_knn)),
            Err(QueryError::Io(_)) => errors += 1,
            Err(e) => panic!("unexpected error class under fault: {e}"),
        }
        tree.disarm();
        heap.disarm();
        // Disarmed, the same shard must answer exactly again.
        let healed = gather::range_query(&s, Engine::Mt, q, &family, &spec).unwrap();
        assert_eq!(healed.sorted_pairs(), want);
    }
    assert!(errors > 0, "no fault ever fired — schedule too late");
    assert!(exact > 0, "no fault ever missed — schedule too early");
}
