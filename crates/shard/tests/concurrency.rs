//! Regression tests for the per-shard locking discipline: a mutation
//! write-locks exactly one shard, and reads on the other shards proceed
//! while it is held (see the write-guard starvation notes in
//! `simquery::shared`).

use simquery::engine::mtindex;
use simquery::index::IndexConfig;
use simquery::query::{FilterPolicy, RangeSpec};
use simquery::transform::Family;
use simshard::{PartitionerKind, ShardConfig, ShardedIndex};
use std::sync::mpsc;
use std::time::Duration;
use tseries::{Corpus, CorpusKind};

const LEN: usize = 64;

fn sharded(n: usize, shards: usize, partitioner: PartitionerKind) -> (Corpus, ShardedIndex) {
    let c = Corpus::generate(CorpusKind::SyntheticWalks, n, LEN, 99);
    let cfg = ShardConfig {
        shards,
        partitioner,
    };
    let s = ShardedIndex::build(&c, cfg, IndexConfig::default()).unwrap();
    (c, s)
}

/// Reads on shard 1 complete while shard 0's write guard is held — the
/// situation during a shard-local insert.
#[test]
fn reads_proceed_during_insert() {
    let (c, s) = sharded(60, 2, PartitionerKind::RoundRobin);
    let family = Family::moving_averages(2..=5, LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);

    // Simulate an in-flight insert: hold shard 0's exclusive guard.
    let guard = s.shards()[0].write();
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let (s, c, family, spec) = (&s, &c, &family, &spec);
        scope.spawn(move || {
            let idx = s.shards()[1].read();
            let r = mtindex::range_query(&idx, &c.series()[1], family, spec).unwrap();
            tx.send(r.matches.len()).unwrap();
        });
        // The read must finish even though shard 0 stays write-locked; a
        // global lock would deadlock here and the recv would time out.
        let n = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("read on shard 1 blocked behind shard 0's write guard");
        assert!(n >= 1, "ordinal 1 lives on shard 1 and matches itself");
    });
    drop(guard);
}

/// An insert routed to shard 0 completes while shard 1 is write-locked:
/// mutations touch only their own shard's lock.
#[test]
fn insert_does_not_need_other_shards() {
    let (_, s) = sharded(60, 2, PartitionerKind::RoundRobin);
    let extra = Corpus::generate(CorpusKind::SyntheticWalks, 1, LEN, 123);

    let guard = s.shards()[1].write();
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let (s, extra) = (&s, &extra);
        scope.spawn(move || {
            // Global ordinal 60 → 60 % 2 = shard 0 under round-robin.
            let g = s.insert_series(&extra.series()[0]).unwrap();
            tx.send(g).unwrap();
        });
        let g = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("insert into shard 0 blocked behind shard 1's write guard");
        assert_eq!(g, 60);
    });
    drop(guard);
    assert_eq!(s.locate(60), Some((0, 30)));
}

/// Many concurrent readers and writers on different shards make progress
/// and leave the map and shards consistent.
#[test]
fn mixed_traffic_stays_consistent() {
    let (c, s) = sharded(80, 4, PartitionerKind::Hash);
    let extra = Corpus::generate(CorpusKind::SyntheticWalks, 12, LEN, 321);
    let family = Family::moving_averages(2..=5, LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);

    std::thread::scope(|scope| {
        let (s, c, family, spec, extra) = (&s, &c, &family, &spec, &extra);
        scope.spawn(move || {
            for ts in extra.series() {
                s.insert_series(ts).unwrap();
            }
        });
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..6 {
                    let q = &c.series()[(t * 13 + i) % 80];
                    let r = simshard::gather::range_query(s, simshard::Engine::Mt, q, family, spec)
                        .unwrap();
                    assert!(r.matched_sequences().iter().all(|&g| g < s.len()));
                }
            });
        }
    });
    assert_eq!(s.len(), 92);
    let loads = s.shard_loads();
    assert_eq!(loads.iter().sum::<usize>(), 92);
    for g in 80..92 {
        let (shard, local) = s.locate(g).unwrap();
        assert!(local < loads[shard]);
    }
}
