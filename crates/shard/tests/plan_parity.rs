//! Planner parity suite: the cost-based plan layer must be invisible in
//! the answers.
//!
//! A grid of queries runs against the same seeded corpus as a single
//! index and as 1/2/4/8-shard backends; for every query the
//! planner-chosen plan (`EnginePref::Auto`) must return the exact result
//! set of each forced engine, and all backends must agree with each
//! other. A second group proves the epoch-keyed result cache: a hit is
//! byte-identical to a fresh execution, and any mutation moves the
//! epoch so a stale entry can never be returned.
//!
//! Only lossless filter policies (`Safe`, `Adaptive`) are exercised —
//! the `Paper` policy's dismissals legitimately depend on tree layout.

use simquery::index::{IndexConfig, SeqIndex};
use simquery::plan::{self, EngineChoice, EnginePref, LogicalQuery, PlanCache, PlanOutput};
use simquery::query::{FilterPolicy, RangeSpec};
use simquery::shared::SharedIndex;
use simquery::stats::StatsRegistry;
use simquery::transform::Family;
use simshard::{gather, ShardConfig, ShardedIndex};
use tseries::{Corpus, CorpusKind, TimeSeries};

const N: usize = 120;
const LEN: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus() -> Corpus {
    Corpus::generate(CorpusKind::SyntheticWalks, N, LEN, 9191)
}

fn single(c: &Corpus) -> SeqIndex {
    SeqIndex::build(c, IndexConfig::default()).unwrap()
}

fn sharded(c: &Corpus, shards: usize) -> ShardedIndex {
    ShardedIndex::build(c, ShardConfig::new(shards).unwrap(), IndexConfig::default()).unwrap()
}

fn specs() -> Vec<RangeSpec> {
    vec![
        RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe),
        RangeSpec::correlation(0.95).with_policy(FilterPolicy::Adaptive),
        RangeSpec::euclidean(3.0).with_policy(FilterPolicy::Safe),
        RangeSpec::euclidean(2.0).with_policy(FilterPolicy::Adaptive),
    ]
}

const PREFS: [EnginePref; 4] = [
    EnginePref::Auto,
    EnginePref::Force(EngineChoice::Mt),
    EnginePref::Force(EngineChoice::St),
    EnginePref::Force(EngineChoice::Scan),
];

fn run_single(
    index: &SeqIndex,
    stats: &StatsRegistry,
    lq: &LogicalQuery,
    q: &TimeSeries,
) -> Vec<(usize, usize)> {
    let (_, out) = plan::run(index, stats, lq, Some(q)).unwrap();
    match out {
        PlanOutput::Range(r) => r.sorted_pairs(),
        other => panic!("range query produced {other:?}"),
    }
}

/// Planner-chosen ≡ every forced engine, on the single index and on
/// every shard count, over the whole query grid.
#[test]
fn auto_plan_matches_every_forced_engine_on_every_backend() {
    let c = corpus();
    let reference = single(&c);
    let stats = StatsRegistry::new();
    let family = Family::moving_averages(2..=7, LEN);
    let shardeds: Vec<ShardedIndex> = SHARD_COUNTS.iter().map(|&s| sharded(&c, s)).collect();
    for spec in specs() {
        for qi in [3usize, 57, 111] {
            let q = &c.series()[qi];
            // The reference answer: forced MT on the single index.
            let lq_mt = LogicalQuery::range(family.clone(), spec)
                .with_engine(EnginePref::Force(EngineChoice::Mt));
            let want = run_single(&reference, &stats, &lq_mt, q);
            for pref in PREFS {
                let lq = LogicalQuery::range(family.clone(), spec).with_engine(pref);
                let got = run_single(&reference, &stats, &lq, q);
                assert_eq!(
                    got, want,
                    "single-index divergence: {pref:?}, {spec:?}, q{qi}"
                );
                for (s, count) in shardeds.iter().zip(SHARD_COUNTS) {
                    let (_, r, _) = gather::execute_range(s, &lq, q).unwrap();
                    assert_eq!(
                        r.sorted_pairs(),
                        want,
                        "sharded divergence: {count} shards, {pref:?}, {spec:?}, q{qi}"
                    );
                }
            }
        }
    }
}

/// Canonical kNN ordering for comparison: (distance, ordinal).
fn canon(matches: &[simquery::report::Match]) -> Vec<(usize, usize)> {
    let mut v: Vec<_> = matches.to_vec();
    v.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.seq.cmp(&b.seq)));
    v.iter().map(|m| (m.seq, m.transform)).collect()
}

/// Planned kNN agrees across the single index and every shard count.
#[test]
fn planned_knn_identical_across_backends() {
    let c = corpus();
    let reference = single(&c);
    let stats = StatsRegistry::new();
    let family = Family::moving_averages(2..=7, LEN);
    for qi in [0usize, 44, 88] {
        for k in [1usize, 5, 12] {
            let q = &c.series()[qi];
            let lq = LogicalQuery::knn(family.clone(), k);
            let (_, out) = plan::run(&reference, &stats, &lq, Some(q)).unwrap();
            let PlanOutput::Knn(want, _) = out else {
                panic!("kNN query produced a non-kNN result");
            };
            for shards in SHARD_COUNTS {
                let s = sharded(&c, shards);
                let (_, got, _, _) = gather::execute_knn(&s, &lq, q).unwrap();
                assert_eq!(
                    canon(&got),
                    canon(&want),
                    "kNN divergence: {shards} shards, q{qi}, k={k}"
                );
            }
        }
    }
}

/// Planned joins: forced engines and the cost model all produce the
/// single exact pair set.
#[test]
fn planned_join_matches_every_forced_engine() {
    let c = corpus();
    let reference = single(&c);
    let stats = StatsRegistry::new();
    let family = Family::moving_averages(2..=5, LEN);
    let spec = RangeSpec::correlation(0.95).with_policy(FilterPolicy::Adaptive);
    let mut want: Option<Vec<(usize, usize, usize)>> = None;
    for pref in PREFS {
        let lq = LogicalQuery::join(family.clone(), spec).with_engine(pref);
        let (_, out) = plan::run(&reference, &stats, &lq, None).unwrap();
        let PlanOutput::Join(r) = out else {
            panic!("join query produced a non-join result");
        };
        let got = r.sorted_triples();
        match &want {
            None => want = Some(got),
            Some(w) => assert_eq!(&got, w, "join divergence under {pref:?}"),
        }
    }
    assert!(
        want.map(|w| !w.is_empty()).unwrap_or(false),
        "join grid matched nothing — thresholds too tight to prove parity"
    );
}

/// The result cache: a hit returns exactly the fresh answer; an insert
/// or delete moves the epoch so the old entry can never satisfy a
/// lookup again (no stale reads, ever).
#[test]
fn cache_hits_are_exact_and_mutations_invalidate() {
    let c = corpus();
    let shared = SharedIndex::new(single(&c));
    let cache = PlanCache::new(8);
    let family = Family::moving_averages(2..=6, LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
    let q = c.series()[7].clone();
    let lq = LogicalQuery::range(family.clone(), spec).with_engine(EnginePref::Auto);
    let fp = lq.fingerprint(Some(&q));

    // Miss, fill, hit: the cached output equals the fresh one.
    let epoch = shared.query_epoch();
    assert!(cache.get(fp, epoch).is_none());
    let (plan, out) = shared.execute(&lq, Some(&q)).unwrap();
    let fresh = match &out {
        PlanOutput::Range(r) => r.sorted_pairs(),
        other => panic!("range query produced {other:?}"),
    };
    cache.put(fp, epoch, plan, out);
    let (_, hit) = cache
        .get(fp, shared.query_epoch())
        .expect("unchanged index must hit");
    let PlanOutput::Range(r) = hit else {
        panic!("cache returned the wrong output kind");
    };
    assert_eq!(r.sorted_pairs(), fresh);

    // An insert bumps the epoch: the same fingerprint now misses, and a
    // fresh execution sees the new sequence — serving the old entry
    // would have been a stale read.
    let inserted = shared.insert_series(&q).unwrap();
    assert!(
        cache.get(fp, shared.query_epoch()).is_none(),
        "mutation must invalidate the cached result"
    );
    let (_, out) = shared.execute(&lq, Some(&q)).unwrap();
    let PlanOutput::Range(r) = out else {
        panic!("range query produced a non-range result");
    };
    let after: Vec<(usize, usize)> = r.sorted_pairs();
    assert!(
        after.iter().any(|&(seq, _)| seq == inserted),
        "the inserted duplicate must now qualify"
    );
    assert_ne!(after, fresh, "result set must reflect the mutation");

    // A delete moves the epoch again, even though it shrinks the set.
    let epoch_before_delete = shared.query_epoch();
    assert!(shared.delete_series(inserted).unwrap());
    assert_ne!(shared.query_epoch(), epoch_before_delete);

    // Counters saw one hit and the misses above.
    let counters = cache.counters();
    assert_eq!(counters.hits, 1);
    assert!(counters.misses >= 2);
}

/// The sharded backend exposes the same epoch semantics.
#[test]
fn sharded_epoch_moves_on_mutation() {
    let c = corpus();
    let s = sharded(&c, 4);
    let e0 = s.query_epoch();
    assert_eq!(e0, s.query_epoch(), "epoch reads are stable");
    let ord = s.insert_series(&c.series()[0]).unwrap();
    let e1 = s.query_epoch();
    assert_ne!(e0, e1, "insert must move the sharded epoch");
    assert!(s.delete_series(ord).unwrap());
    assert_ne!(s.query_epoch(), e1, "delete must move the sharded epoch");
}
