//! Criterion benches of the three query algorithms at the headline
//! configurations of Figures 5–7: one representative point per figure so
//! `cargo bench` tracks regressions in each curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simquery::engine::{join, mtindex, seqscan, stindex};
use simquery::prelude::*;
use std::hint::black_box;

const N: usize = 128;

fn fig5_point(c: &mut Criterion) {
    // Fig. 5 at 2000 synthetic sequences, |T| = 16.
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2000, N, 50);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(10..=25, N);
    let spec = RangeSpec::correlation(0.96);
    let query = corpus.series()[123].clone();

    let mut group = c.benchmark_group("fig5_range_query_2000seqs_16T");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("seqscan"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(seqscan::range_query(&index, &query, &family, &spec).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("stindex"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(stindex::range_query(&index, &query, &family, &spec).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("mtindex"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(mtindex::range_query(&index, &query, &family, &spec).unwrap())
        })
    });
    group.finish();
}

fn fig6_point(c: &mut Criterion) {
    // Fig. 6 at |T| = 30 on the 1068-stock corpus.
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, N, 60);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(5..=34, N);
    let spec = RangeSpec::correlation(0.96);
    let query = corpus.series()[500].clone();

    let mut group = c.benchmark_group("fig6_range_query_1068stocks_30T");
    group.sample_size(10);
    for (name, run) in [
        ("seqscan", seqscan::range_query as fn(_, _, _, _) -> _),
        ("stindex", stindex::range_query),
        ("mtindex", mtindex::range_query),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                index.reset_counters();
                black_box(run(&index, &query, &family, &spec).unwrap())
            })
        });
    }
    group.finish();
}

fn fig7_point(c: &mut Criterion) {
    // Fig. 7's join at |T| = 10 on a smaller corpus (joins are quadratic).
    let corpus = Corpus::generate(CorpusKind::StockCloses, 300, N, 70);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(5..=14, N);
    let spec = RangeSpec::correlation(0.99);

    let mut group = c.benchmark_group("fig7_self_join_300stocks_10T");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("scan_join"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(join::scan_join(&index, &family, &spec).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("st_join"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(join::st_join(&index, &family, &spec).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("mt_join"), |b| {
        b.iter(|| {
            index.reset_counters();
            black_box(join::mt_join(&index, &family, &spec).unwrap())
        })
    });
    group.finish();
}

fn filter_policies(c: &mut Criterion) {
    // Pruning power vs cost of the three angle-dimension policies on the
    // ± (two-cluster) family, where they differ most.
    use simquery::query::FilterPolicy;
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, N, 90);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(6..=29, N).with_inverted();
    let query = corpus.series()[321].clone();

    let mut group = c.benchmark_group("filter_policies_inverted_family");
    group.sample_size(10);
    for (name, policy) in [
        ("paper", FilterPolicy::Paper),
        ("safe", FilterPolicy::Safe),
        ("adaptive", FilterPolicy::Adaptive),
    ] {
        let spec = RangeSpec::correlation(0.96).with_policy(policy);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                index.reset_counters();
                black_box(mtindex::range_query(&index, &query, &family, &spec).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig5_point, fig6_point, fig7_point, filter_policies);
criterion_main!(benches);
