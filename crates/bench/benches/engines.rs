//! Benches of the three query algorithms at the headline configurations of
//! Figures 5–7: one representative point per figure so `cargo bench` tracks
//! regressions in each curve.
//!
//! Plain `harness = false` timing loops (std only — no external benchmark
//! framework): each case is warmed once, then timed for a fixed number of
//! samples; the median, min and max per-iteration wall times are printed.

use simquery::engine::{join, mtindex, seqscan, stindex};
use simquery::prelude::*;
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 128;
const SAMPLES: usize = 10;

fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    println!(
        "{group}/{name:<10} median {:>12.3?}  min {:>12.3?}  max {:>12.3?}",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1],
    );
}

fn fig5_point() {
    // Fig. 5 at 2000 synthetic sequences, |T| = 16.
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2000, N, 50);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(10..=25, N);
    let spec = RangeSpec::correlation(0.96);
    let query = corpus.series()[123].clone();

    let group = "fig5_range_query_2000seqs_16T";
    for (name, run) in [
        ("seqscan", seqscan::range_query as fn(_, _, _, _) -> _),
        ("stindex", stindex::range_query),
        ("mtindex", mtindex::range_query),
    ] {
        bench(group, name, || {
            index.reset_counters().expect("reset counters");
            run(&index, &query, &family, &spec).unwrap()
        });
    }
}

fn fig6_point() {
    // Fig. 6 at |T| = 30 on the 1068-stock corpus.
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, N, 60);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(5..=34, N);
    let spec = RangeSpec::correlation(0.96);
    let query = corpus.series()[500].clone();

    let group = "fig6_range_query_1068stocks_30T";
    for (name, run) in [
        ("seqscan", seqscan::range_query as fn(_, _, _, _) -> _),
        ("stindex", stindex::range_query),
        ("mtindex", mtindex::range_query),
    ] {
        bench(group, name, || {
            index.reset_counters().expect("reset counters");
            run(&index, &query, &family, &spec).unwrap()
        });
    }
}

fn fig7_point() {
    // Fig. 7's join at |T| = 10 on a smaller corpus (joins are quadratic).
    let corpus = Corpus::generate(CorpusKind::StockCloses, 300, N, 70);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(5..=14, N);
    let spec = RangeSpec::correlation(0.99);

    let group = "fig7_self_join_300stocks_10T";
    for (name, run) in [
        ("scan_join", join::scan_join as fn(_, _, _) -> _),
        ("st_join", join::st_join),
        ("mt_join", join::mt_join),
    ] {
        bench(group, name, || {
            index.reset_counters().expect("reset counters");
            run(&index, &family, &spec).unwrap()
        });
    }
}

fn filter_policies() {
    // Pruning power vs cost of the three angle-dimension policies on the
    // ± (two-cluster) family, where they differ most.
    use simquery::query::FilterPolicy;
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, N, 90);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    let family = Family::moving_averages(6..=29, N).with_inverted();
    let query = corpus.series()[321].clone();

    let group = "filter_policies_inverted_family";
    for (name, policy) in [
        ("paper", FilterPolicy::Paper),
        ("safe", FilterPolicy::Safe),
        ("adaptive", FilterPolicy::Adaptive),
    ] {
        let spec = RangeSpec::correlation(0.96).with_policy(policy);
        bench(group, name, || {
            index.reset_counters().expect("reset counters");
            mtindex::range_query(&index, &query, &family, &spec).unwrap()
        });
    }
}

fn main() {
    fig5_point();
    fig6_point();
    fig7_point();
    filter_policies();
}
