//! Criterion micro-benches of the substrates: FFT, R*-tree operations,
//! transformation application and the Eq. 12 rectangle algebra. These pin
//! the constants behind the engine-level curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstartree::{MemStore, Params, RStarTree, Rect};
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use simquery::tmbr::TransformMbr;
use std::hint::black_box;
use tsfft::{fft, Complex64};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[128usize, 127, 1024] {
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new((t as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| black_box(fft(x)))
        });
    }
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 1, 128, 7);
    let ts = corpus.series()[0].clone();
    c.bench_function("feature_extract_128", |b| {
        b.iter(|| black_box(SeqFeatures::extract(&ts).unwrap()))
    });
}

fn bench_transform_apply(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2, 128, 8);
    let x = SeqFeatures::extract(&corpus.series()[0]).unwrap();
    let q = SeqFeatures::extract(&corpus.series()[1]).unwrap();
    let t = simquery::transform::Transform::moving_average(9, 128);
    c.bench_function("transformed_distance_128", |b| {
        b.iter(|| black_box(t.transformed_distance(&x, &q)))
    });
    let family = Family::moving_averages(5..=34, 128);
    let mbr = TransformMbr::of_family(&family);
    let rect = Rect::new(
        [0.0, 0.5, 0.1, -1.0, 0.05, -2.0],
        [10.0, 3.0, 4.0, 1.0, 2.0, 2.0],
    );
    c.bench_function("eq12_apply_to_rect", |b| {
        b.iter(|| black_box(mbr.apply_to_rect(&rect)))
    });
}

fn bench_rtree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let points: Vec<(Rect<6>, u64)> = (0..5000)
        .map(|i| {
            let mut p = [0.0; 6];
            for slot in p.iter_mut() {
                *slot = rng.random_range(-100.0..100.0);
            }
            (Rect::point(p), i as u64)
        })
        .collect();

    c.bench_function("rtree_insert_5000x6d", |b| {
        b.iter(|| {
            let mut tree: RStarTree<6, MemStore<6>> =
                RStarTree::with_params(MemStore::new(), Params::with_max(32));
            for (r, d) in &points {
                tree.insert(*r, *d);
            }
            black_box(tree.len())
        })
    });

    let tree = rstartree::bulk_load_str(MemStore::new(), Params::with_max(32), points.clone());
    let query = Rect::new([-20.0; 6], [20.0; 6]);
    c.bench_function("rtree_range_query_5000x6d", |b| {
        b.iter(|| black_box(tree.range(&query).0.len()))
    });
    c.bench_function("rtree_bulk_load_5000x6d", |b| {
        b.iter(|| {
            let t = rstartree::bulk_load_str(MemStore::new(), Params::with_max(32), points.clone());
            black_box(t.len())
        })
    });
}

fn bench_index_build(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, 128, 9);
    let mut group = c.benchmark_group("index_build_1068x128");
    group.sample_size(10);
    group.bench_function("bulk", |b| {
        b.iter(|| {
            black_box(
                SeqIndex::build(&corpus, IndexConfig::default())
                    .unwrap()
                    .len(),
            )
        })
    });
    group.bench_function("insert", |b| {
        b.iter(|| {
            let cfg = IndexConfig {
                bulk: false,
                ..Default::default()
            };
            black_box(SeqIndex::build(&corpus, cfg).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_feature_extraction,
    bench_transform_apply,
    bench_rtree,
    bench_index_build
);
criterion_main!(benches);
