//! Micro-benches of the substrates: FFT, R*-tree operations, transformation
//! application and the Eq. 12 rectangle algebra. These pin the constants
//! behind the engine-level curves.
//!
//! Plain `harness = false` timing loops (std only): each case is warmed
//! once, then timed for a fixed number of samples; the median, min and max
//! per-iteration wall times are printed.

use rstartree::{MemStore, Params, RStarTree, Rect};
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use simquery::tmbr::TransformMbr;
use std::hint::black_box;
use std::time::{Duration, Instant};
use tseries::rng::SeededRng;
use tsfft::{fft, Complex64};

fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) {
    black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    println!(
        "{name:<28} median {:>12.3?}  min {:>12.3?}  max {:>12.3?}",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1],
    );
}

fn bench_fft() {
    for &n in &[128usize, 127, 1024] {
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new((t as f64 * 0.1).sin(), 0.0))
            .collect();
        bench(&format!("fft/{n}"), 100, || fft(&x));
    }
}

fn bench_feature_extraction() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 1, 128, 7);
    let ts = corpus.series()[0].clone();
    bench("feature_extract_128", 100, || {
        SeqFeatures::extract(&ts).unwrap()
    });
}

fn bench_transform_apply() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2, 128, 8);
    let x = SeqFeatures::extract(&corpus.series()[0]).unwrap();
    let q = SeqFeatures::extract(&corpus.series()[1]).unwrap();
    let t = simquery::transform::Transform::moving_average(9, 128);
    bench("transformed_distance_128", 100, || {
        t.transformed_distance(&x, &q)
    });
    let family = Family::moving_averages(5..=34, 128);
    let mbr = TransformMbr::of_family(&family);
    let rect = Rect::new(
        [0.0, 0.5, 0.1, -1.0, 0.05, -2.0],
        [10.0, 3.0, 4.0, 1.0, 2.0, 2.0],
    );
    bench("eq12_apply_to_rect", 100, || mbr.apply_to_rect(&rect));
}

fn bench_rtree() {
    let mut rng = SeededRng::seed_from_u64(11);
    let points: Vec<(Rect<6>, u64)> = (0..5000)
        .map(|i| {
            let mut p = [0.0; 6];
            for slot in p.iter_mut() {
                *slot = rng.random_range(-100.0..100.0);
            }
            (Rect::point(p), i as u64)
        })
        .collect();

    bench("rtree_insert_5000x6d", 10, || {
        let mut tree: RStarTree<6, MemStore<6>> =
            RStarTree::with_params(MemStore::new(), Params::with_max(32));
        for (r, d) in &points {
            tree.insert(*r, *d).expect("insert");
        }
        tree.len()
    });

    let tree = rstartree::bulk_load_str(MemStore::new(), Params::with_max(32), points.clone());
    let query = Rect::new([-20.0; 6], [20.0; 6]);
    bench("rtree_range_query_5000x6d", 100, || {
        tree.range(&query).unwrap().0.len()
    });
    bench("rtree_bulk_load_5000x6d", 10, || {
        rstartree::bulk_load_str(MemStore::new(), Params::with_max(32), points.clone()).len()
    });
}

fn bench_index_build() {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, 128, 9);
    bench("index_build_1068x128/bulk", 10, || {
        SeqIndex::build(&corpus, IndexConfig::default())
            .unwrap()
            .len()
    });
    bench("index_build_1068x128/insert", 10, || {
        let cfg = IndexConfig {
            bulk: false,
            ..Default::default()
        };
        SeqIndex::build(&corpus, cfg).unwrap().len()
    });
}

fn main() {
    bench_fft();
    bench_feature_extraction();
    bench_transform_apply();
    bench_rtree();
    bench_index_build();
}
