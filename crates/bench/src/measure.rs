//! Measurement plumbing: cold-per-query averaging over random query
//! sequences, as in §5 ("we ran each experiment 100 times and each time we
//! chose a random query sequence from the data set … averaged the
//! execution times").

use simquery::prelude::*;
use simquery::report::{JoinResult, QueryError};
use std::time::Instant;
use tseries::rng::SeededRng;
use tseries::TimeSeries;

/// Averages accumulated over a batch of queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct Averages {
    /// Mean wall time per query, milliseconds.
    pub wall_ms: f64,
    /// Mean index node accesses.
    pub node_accesses: f64,
    /// Mean leaf accesses.
    pub leaf_accesses: f64,
    /// Mean record-page accesses (physical).
    pub record_pages: f64,
    /// Mean logical record fetches (the paper's accounting).
    pub record_fetches: f64,
    /// Mean full-sequence comparisons.
    pub comparisons: f64,
    /// Mean candidates.
    pub candidates: f64,
    /// Mean output size (matches).
    pub output: f64,
}

impl Averages {
    /// Mean total physical disk accesses (index + record pages).
    pub fn disk_accesses(&self) -> f64 {
        self.node_accesses + self.record_pages
    }

    /// Mean disk accesses in the paper's accounting (index nodes + logical
    /// record fetches).
    pub fn paper_disk_accesses(&self) -> f64 {
        self.node_accesses + self.record_fetches
    }
}

/// Runs `engine` over `queries` random query sequences drawn from the
/// corpus (seeded), resetting counters before each query so accesses are
/// cold, and averages the metrics.
pub fn average_range_queries(
    index: &SeqIndex,
    corpus: &Corpus,
    queries: usize,
    seed: u64,
    mut engine: impl FnMut(&SeqIndex, &TimeSeries) -> Result<QueryResult, QueryError>,
) -> Averages {
    assert!(queries > 0, "need at least one query");
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut acc = Averages::default();
    let mut ran = 0usize;
    while ran < queries {
        let qi = rng.random_range(0..corpus.len());
        let query = &corpus.series()[qi];
        index.reset_counters().unwrap();
        let start = Instant::now();
        let result = match engine(index, query) {
            Ok(r) => r,
            Err(QueryError::DegenerateQuery) => continue, // redraw
            Err(e) => panic!("query failed: {e}"),
        };
        let wall = start.elapsed();
        acc.wall_ms += wall.as_secs_f64() * 1e3;
        acc.node_accesses += result.metrics.node_accesses as f64;
        acc.leaf_accesses += result.metrics.leaf_accesses as f64;
        acc.record_pages += result.metrics.record_page_accesses as f64;
        acc.record_fetches += result.metrics.record_fetches as f64;
        acc.comparisons += result.metrics.comparisons as f64;
        acc.candidates += result.metrics.candidates as f64;
        acc.output += result.matches.len() as f64;
        ran += 1;
    }
    scale(acc, ran)
}

/// Times one join execution (joins are whole-relation, not per-query).
pub fn measure_join(
    index: &SeqIndex,
    run: impl FnOnce(&SeqIndex) -> Result<JoinResult, QueryError>,
) -> (Averages, usize) {
    index.reset_counters().unwrap();
    let start = Instant::now();
    let result = run(index).expect("join failed");
    let wall = start.elapsed();
    let avg = Averages {
        wall_ms: wall.as_secs_f64() * 1e3,
        node_accesses: result.metrics.node_accesses as f64,
        leaf_accesses: result.metrics.leaf_accesses as f64,
        record_pages: result.metrics.record_page_accesses as f64,
        record_fetches: result.metrics.record_fetches as f64,
        comparisons: result.metrics.comparisons as f64,
        candidates: result.metrics.candidates as f64,
        output: result.matches.len() as f64,
    };
    (avg, result.matches.len())
}

fn scale(mut acc: Averages, n: usize) -> Averages {
    let k = 1.0 / n as f64;
    acc.wall_ms *= k;
    acc.node_accesses *= k;
    acc.leaf_accesses *= k;
    acc.record_pages *= k;
    acc.record_fetches *= k;
    acc.comparisons *= k;
    acc.candidates *= k;
    acc.output *= k;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use simquery::engine::mtindex;

    #[test]
    fn averaging_is_deterministic_per_seed() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 80, 64, 1);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(3..=6, 64);
        let spec = RangeSpec::correlation(0.96);
        let run = |idx: &SeqIndex, q: &TimeSeries| mtindex::range_query(idx, q, &family, &spec);
        let a = average_range_queries(&index, &corpus, 5, 9, run);
        let b = average_range_queries(&index, &corpus, 5, 9, run);
        assert_eq!(a.node_accesses, b.node_accesses);
        assert_eq!(a.output, b.output);
        assert!(a.wall_ms > 0.0);
    }
}
