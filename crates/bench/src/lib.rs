//! Benchmark harness for the ICDE '99 reproduction.
//!
//! Every figure of the paper's evaluation has a regenerator here (used by
//! the `fig*` binaries and the all-in-one `repro` binary); shared plumbing
//! lives in [`measure`] and [`table`].
//!
//! Environment knobs:
//!
//! * `REPRO_QUERIES` — random query sequences averaged per configuration
//!   (default 50; the paper used 100);
//! * `REPRO_FAST=1` — shrink sweeps for a quick smoke run.

pub mod figures;
pub mod measure;
pub mod table;

/// Number of random queries to average, from `REPRO_QUERIES`.
pub fn query_count() -> usize {
    std::env::var("REPRO_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Whether to shrink sweeps (`REPRO_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("REPRO_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Where TSV outputs go (`results/` under the workspace root).
pub fn results_dir() -> std::path::PathBuf {
    let dir =
        std::path::PathBuf::from(std::env::var("REPRO_OUT").unwrap_or_else(|_| "results".into()));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}
