//! Plain-text result tables (printed and saved as TSV).

use std::fmt::Write as _;
use std::path::Path;

/// A labelled table of measurement rows.
#[derive(Clone, Debug)]
pub struct Table {
    /// Human-readable title (figure id + description).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row values, stringified by the producer.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Saves tab-separated values.
    pub fn save_tsv(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        std::fs::write(path, out)
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_tsv() {
        let mut t = Table::new("Fig. X — demo", &["n", "ms"]);
        t.push(vec!["10".into(), f2(1.234)]);
        t.push(vec!["10000".into(), f2(56.7)]);
        let text = t.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("1.23"));
        let dir = std::env::temp_dir().join("bench_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.tsv");
        t.save_tsv(&p).unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        assert!(back.contains("n\tms"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
