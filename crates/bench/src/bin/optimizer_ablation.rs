//! §4.3 optimizer ablation: the cost-driven MBR chooser
//! (`partition::optimize`) against fixed partitionings, on both the plain
//! moving-average family (Fig. 8's workload) and the two-cluster ± family
//! (Fig. 9's).
//!
//! `cargo run -p bench --release --bin optimizer_ablation`

use bench::table::{f2, Table};
use simquery::cost::CostModel;
use simquery::engine::mtindex;
use simquery::prelude::*;

fn main() {
    let n = 128;
    let queries = bench::query_count().min(40);
    let corpus = Corpus::generate(CorpusKind::StockCloses, 1068, n, 80);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    let spec = RangeSpec::correlation(0.96);
    let model = CostModel::default();
    let dir = bench::results_dir();

    for (tag, family) in [
        ("mv(6..29)", Family::moving_averages(6..=29, n)),
        (
            "±mv(6..29)",
            Family::moving_averages(6..=29, n).with_inverted(),
        ),
    ] {
        // Optimize on 3 sample queries, evaluate on `queries` fresh ones.
        let samples: Vec<TimeSeries> = (0..3)
            .map(|i| corpus.series()[101 * i + 7].clone())
            .collect();
        let (chosen, report) =
            simquery::partition::optimize(&index, &family, &spec, &samples, &model)
                .expect("optimize");

        let mut t = Table::new(
            format!("§4.3 optimizer — candidate costs for {tag} (Eq. 20, 3 sample queries)"),
            &["candidate", "estimated cost"],
        );
        for (name, cost) in &report {
            t.push(vec![name.clone(), f2(*cost)]);
        }
        t.print();

        // Measured wall time: chosen plan vs the two extremes.
        let mut m = Table::new(
            format!("§4.3 optimizer — measured time for {tag} ({queries} queries)"),
            &["plan", "rects", "time ms"],
        );
        let single = simquery::partition::partition(&family, &PartitionStrategy::Single);
        let st_like =
            simquery::partition::partition(&family, &PartitionStrategy::EqualWidth { per_mbr: 1 });
        for (name, mbrs) in [
            ("optimizer's choice", &chosen),
            ("all-in-one", &single),
            ("one-per-MBR (ST-like)", &st_like),
        ] {
            let mut wall = 0.0;
            for qi in 0..queries {
                let q = &corpus.series()[(qi * 13) % corpus.len()];
                index.reset_counters().unwrap();
                let start = std::time::Instant::now();
                let _ = mtindex::range_query_with_mbrs(&index, q, &family, &spec, mbrs, None)
                    .expect("query");
                wall += start.elapsed().as_secs_f64() * 1e3;
            }
            m.push(vec![
                name.into(),
                mbrs.len().to_string(),
                f2(wall / queries as f64),
            ]);
        }
        m.print();
        let file = dir.join(format!(
            "optimizer_{}.tsv",
            if tag.starts_with('±') {
                "inverted"
            } else {
                "plain"
            }
        ));
        m.save_tsv(&file).expect("save");
    }
}
