//! §2.1 ablation: the conjugate-symmetry property of the DFT lets the index
//! shrink every search window by √2 (each stored coefficient bounds the
//! distance twice). The paper (citing the author's thesis) claims this
//! "improves the search time of the index by more than a factor of 2
//! without increasing its dimensionality". Compare filter-only probes at
//! half-width ε/√2 (symmetry used) vs ε (not used).
//!
//! `cargo run -p bench --release --bin symmetry_ablation`

use bench::table::{f2, Table};
use simquery::engine::mtindex;
use simquery::prelude::*;

fn main() {
    let n = 128;
    let queries = bench::query_count().min(60);
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 4000, n, 21);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    let family = Family::moving_averages(10..=25, n);
    let mbrs = vec![simquery::tmbr::TransformMbr::of_family(&family)];

    let mut t = Table::new(
        format!(
            "§2.1 — symmetry-property ablation (4000 walks, |T|=16, {queries} queries): \
             windows of ε/√2 (with symmetry) vs ε (without)"
        ),
        &[
            "ρ",
            "candidates with",
            "candidates without",
            "ratio",
            "nodes with",
            "nodes without",
        ],
    );
    for rho in [0.96f64, 0.98, 0.99] {
        let eps = tseries::distance_threshold_for_correlation(n, rho);
        // `probe` filters only; inflating ε by √2 reproduces a filter that
        // does NOT exploit the symmetry (its window is ε, not ε/√2).
        let with_spec = RangeSpec::euclidean(eps);
        let without_spec = RangeSpec::euclidean(eps * std::f64::consts::SQRT_2);
        let mut cands = [0.0f64; 2];
        let mut nodes = [0.0f64; 2];
        for qi in 0..queries {
            let q = &corpus.series()[(qi * 61) % corpus.len()];
            for (slot, spec) in [(0usize, &with_spec), (1, &without_spec)] {
                let trav = mtindex::probe(&index, q, &family, spec, &mbrs).expect("probe");
                cands[slot] += trav[0].candidates as f64;
                nodes[slot] += trav[0].da_all as f64;
            }
        }
        let k = 1.0 / queries as f64;
        t.push(vec![
            format!("{rho}"),
            f2(cands[0] * k),
            f2(cands[1] * k),
            f2(cands[1] / cands[0].max(1.0)),
            f2(nodes[0] * k),
            f2(nodes[1] * k),
        ]);
    }
    t.print();
    t.save_tsv(&bench::results_dir().join("symmetry_ablation.tsv"))
        .expect("save");
}
