//! Shard-scaling sweep: aggregate throughput and latency of a mixed read
//! workload (MT/ST range queries, sequential scans, exact global kNN)
//! against the same corpus partitioned across 1, 2, 4 and 8 shards.
//!
//! Closed-loop client threads replay an identical seeded op schedule at
//! every shard count, so runs differ only in how the scatter-gather
//! executor splits each query. Writes `results/shard_scaling.json`.
//!
//! `cargo run -p bench --release --bin shard_scaling`

use bench::table::{f2, Table};
use simquery::index::IndexConfig;
use simquery::query::{FilterPolicy, RangeSpec};
use simquery::transform::Family;
use simshard::{gather, ShardConfig, ShardedIndex};
use tseries::rng::SeededRng;
use tseries::{Corpus, CorpusKind};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone, Copy)]
struct Workload {
    sequences: usize,
    len: usize,
    seed: u64,
    threads: usize,
    ops_per_thread: usize,
}

struct RunStats {
    shards: usize,
    ops: usize,
    wall_s: f64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// One closed-loop client: replays `ops` operations drawn from the mixed
/// read schedule, returning each op's latency in microseconds.
fn client_loop(
    sharded: &ShardedIndex,
    corpus: &Corpus,
    family: &Family,
    spec: &RangeSpec,
    thread_seed: u64,
    ops: usize,
) -> Vec<u64> {
    let mut rng = SeededRng::seed_from_u64(thread_seed);
    let n = corpus.len();
    let mut latencies = Vec::with_capacity(ops);
    for _ in 0..ops {
        let ord = rng.random_range(0.0..n as f64) as usize;
        let query = &corpus.series()[ord.min(n - 1)];
        let dice = rng.random_range(0.0..100.0);
        let start = std::time::Instant::now();
        // 60% MT range, 25% ST range, 5% scan, 10% exact kNN.
        if dice < 60.0 {
            gather::range_query(sharded, gather::Engine::Mt, query, family, spec)
                .expect("mt query");
        } else if dice < 85.0 {
            gather::range_query(sharded, gather::Engine::St, query, family, spec)
                .expect("st query");
        } else if dice < 90.0 {
            gather::range_query(sharded, gather::Engine::Scan, query, family, spec)
                .expect("scan query");
        } else {
            gather::knn(sharded, query, family, 5).expect("knn query");
        }
        latencies.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
    latencies
}

fn run_one(corpus: &Corpus, w: Workload, shards: usize) -> RunStats {
    let sharded = ShardedIndex::build(
        corpus,
        ShardConfig::new(shards).expect("shard count"),
        IndexConfig::default(),
    )
    .expect("build sharded index");
    let family = Family::moving_averages(4..=12, w.len);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Adaptive);

    let start = std::time::Instant::now();
    let mut all: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w.threads)
            .map(|t| {
                let (sharded, family, spec) = (&sharded, &family, &spec);
                s.spawn(move || {
                    client_loop(
                        sharded,
                        corpus,
                        family,
                        spec,
                        w.seed ^ (0x9e37 + t as u64),
                        w.ops_per_thread,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    all.sort_unstable();
    let ops = all.len();
    RunStats {
        shards,
        ops,
        wall_s,
        qps: ops as f64 / wall_s,
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
        max_us: all.last().copied().unwrap_or(0),
    }
}

fn write_json(w: Workload, runs: &[RunStats]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"shard_scaling\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{\"sequences\": {}, \"len\": {}, \"seed\": {}}},",
        w.sequences, w.len, w.seed
    );
    let _ = writeln!(
        out,
        "  \"workload\": {{\"threads\": {}, \"ops_per_thread\": {}, \
         \"mix\": {{\"mt\": 0.60, \"st\": 0.25, \"scan\": 0.05, \"knn\": 0.10}}}},",
        w.threads, w.ops_per_thread
    );
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"ops\": {}, \"wall_s\": {:.4}, \"qps\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{comma}",
            r.shards, r.ops, r.wall_s, r.qps, r.p50_us, r.p95_us, r.p99_us, r.max_us
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(bench::results_dir().join("shard_scaling.json"), out)
}

fn main() {
    let fast = bench::fast_mode();
    let w = Workload {
        sequences: if fast { 600 } else { 2000 },
        len: 64,
        seed: 77,
        threads: 1,
        ops_per_thread: if fast { 40 } else { 250 },
    };
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, w.sequences, w.len, w.seed);

    let mut t = Table::new(
        format!(
            "shard scaling ({} walks × {}, {} closed-loop threads × {} mixed read ops)",
            w.sequences, w.len, w.threads, w.ops_per_thread
        ),
        &["shards", "qps", "p50 ms", "p95 ms", "p99 ms", "max ms"],
    );
    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        // Warm-up pass so page pools and allocator state don't favour
        // whichever shard count happens to run first, then best-of-3
        // measured passes to suppress scheduler noise (everything here
        // is deterministic compute; the fastest pass is the least
        // perturbed one).
        let _ = run_one(
            &corpus,
            Workload {
                ops_per_thread: 5,
                ..w
            },
            shards,
        );
        let r = (0..3)
            .map(|_| run_one(&corpus, w, shards))
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("three passes");
        t.push(vec![
            r.shards.to_string(),
            f2(r.qps),
            f2(r.p50_us as f64 / 1e3),
            f2(r.p95_us as f64 / 1e3),
            f2(r.p99_us as f64 / 1e3),
            f2(r.max_us as f64 / 1e3),
        ]);
        runs.push(r);
    }
    t.print();
    write_json(w, &runs).expect("write shard_scaling.json");
}
