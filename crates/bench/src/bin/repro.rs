//! Runs the full evaluation: every figure plus the ordering ablation,
//! printing each table and saving TSVs under `results/`.
//!
//! `cargo run -p bench --release --bin repro`
//! (env: REPRO_QUERIES=N, REPRO_FAST=1, REPRO_OUT=dir).

use std::time::Instant;

type FigureFn = fn() -> Vec<bench::table::Table>;

fn main() {
    let dir = bench::results_dir();
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig1", bench::figures::fig1),
        ("fig2", bench::figures::fig2),
        ("fig3", bench::figures::fig3),
        ("fig5", bench::figures::fig5),
        ("fig6", bench::figures::fig6),
        ("fig7", bench::figures::fig7),
        ("fig8", bench::figures::fig8),
        ("fig9", bench::figures::fig9),
        ("ordering", bench::figures::ordering_ablation),
    ];
    for (name, run) in figures {
        let start = Instant::now();
        eprintln!(">>> {name} …");
        for (i, table) in run().iter().enumerate() {
            table.print();
            table
                .save_tsv(&dir.join(format!("{name}_{i}.tsv")))
                .expect("write tsv");
        }
        eprintln!("<<< {name} done in {:.1?}\n", start.elapsed());
    }
    eprintln!("all tables saved under {}", dir.display());
}
