//! Subsequence-index ablation: the FRM trail-length trade-off. Longer
//! sub-trails shrink the index (fewer MBRs) but widen each rectangle,
//! admitting more candidate windows — the same filter-vs-traversal tension
//! as the paper's transformations-per-MBR sweep, one level down.
//!
//! `cargo run -p bench --release --bin subseq_ablation`

use bench::table::{f2, Table};
use simquery::prelude::*;
use tseries::random_walk;
use tseries::rng::SeededRng;

fn main() {
    let window = 32;
    let queries = bench::query_count().min(30);
    let mut rng = SeededRng::seed_from_u64(909);
    let seqs: Vec<TimeSeries> = (0..60).map(|_| random_walk(&mut rng, 1000, 6.0)).collect();
    let family = Family::moving_averages(1..=4, window);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Adaptive);

    let mut t = Table::new(
        format!(
            "Subsequence index — windows per sub-trail MBR \
             (60 sequences × 1000 samples, window {window}, {queries} patterns)"
        ),
        &[
            "trail len",
            "index MBRs",
            "time ms",
            "nodes",
            "windows verified",
            "avg |output|",
        ],
    );
    for trail_len in [1usize, 2, 4, 8, 16, 32, 64] {
        let index = SubseqIndex::build(seqs.clone(), window, trail_len).expect("indexable corpus");
        let mut wall = 0.0;
        let mut nodes = 0.0;
        let mut cmps = 0.0;
        let mut output = 0.0;
        for qi in 0..queries {
            let seq = (qi * 7) % seqs.len();
            let off = (qi * 131) % (1000 - window);
            let pattern: TimeSeries = seqs[seq].values()[off..off + window].to_vec().into();
            let start = std::time::Instant::now();
            let (matches, metrics) = index.query(&pattern, &family, &spec).expect("query");
            wall += start.elapsed().as_secs_f64() * 1e3;
            nodes += metrics.node_accesses as f64;
            cmps += metrics.comparisons as f64;
            output += matches.len() as f64;
        }
        let k = 1.0 / queries as f64;
        t.push(vec![
            trail_len.to_string(),
            index.trail_count().to_string(),
            f2(wall * k),
            f2(nodes * k),
            f2(cmps * k / family.len() as f64),
            f2(output * k),
        ]);
    }
    t.print();
    t.save_tsv(&bench::results_dir().join("subseq_ablation.tsv"))
        .expect("save");
}
