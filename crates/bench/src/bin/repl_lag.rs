//! Replication tax: wire-level insert throughput of a primary serving
//! zero followers versus one follower streaming the WAL over loopback.
//!
//! Both runs start from the same saved snapshot and push the same seeded
//! random walks through a live `Client`; the follower run additionally
//! bootstraps a replica via the `REPL` snapshot transfer and lets it
//! poll frames while the inserts are in flight, then measures how long
//! the follower takes to drain the remaining lag to zero. The follower
//! runs paced (`pace_ms`) — the bounded-staleness configuration — so on
//! a small machine the replica's apply work does not time-share the
//! primary's cores mid-burst; the deferred work shows up as `drain_ms`
//! instead. Writes `results/repl_lag.json`.
//!
//! `cargo run -p bench --release --bin repl_lag`

use bench::table::{f2, Table};
use simquery::index::{IndexConfig, SeqIndex};
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::repl::{self, FollowerOpts};
use simserve::server::{serve, ServerConfig};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tseries::rng::SeededRng;
use tseries::{random_walk, Corpus, CorpusKind};

const SEQ_LEN: usize = 64;
/// Follower poll pacing (see `FollowerOpts::pace_ms`).
const PACE_MS: u64 = 100;

struct RunStats {
    followers: usize,
    inserts: usize,
    wall_s: f64,
    per_sec: f64,
    mean_us: f64,
    drain_ms: f64,
    bytes: u64,
    snapshots: u64,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simseq_repl_lag_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &PathBuf, dst: &PathBuf) {
    std::fs::create_dir_all(dst).expect("create scratch dir");
    for entry in std::fs::read_dir(src).expect("read snapshot dir") {
        let entry = entry.expect("dir entry");
        if entry.file_name() != "LOCK" {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy snapshot file");
        }
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 32,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn run_one(snapshot: &PathBuf, followers: usize, inserts: usize, seed: u64) -> RunStats {
    let idx = scratch(&format!("idx_f{followers}"));
    let wal = scratch(&format!("wal_f{followers}"));
    copy_dir(snapshot, &idx);
    let (shared, _) =
        SharedIndex::open_durable(&idx, &wal, 64, FsyncPolicy::Never).expect("open durable");
    let handle = serve(shared, &server_config()).expect("serve primary");
    let addr = handle.addr.to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let mut replicas = Vec::new();
    for _ in 0..followers {
        let (_, follower) = repl::bootstrap(
            &addr,
            FollowerOpts {
                batch: 0,
                wait_ms: 0,
                pace_ms: PACE_MS,
                state_dir: None,
                reconnect_seed: 0,
            },
        )
        .expect("bootstrap follower");
        let stats = follower.stats();
        replicas.push((stats, follower.spawn(Arc::clone(&stop))));
    }

    let mut rng = SeededRng::seed_from_u64(seed);
    let series: Vec<_> = (0..inserts)
        .map(|_| random_walk(&mut rng, SEQ_LEN, 100.0))
        .collect();
    let mut client = Client::connect(handle.addr).expect("connect");

    let start = std::time::Instant::now();
    for ts in &series {
        client
            .insert(ts.values().to_vec())
            .expect("wire insert")
            .expect("insert accepted");
    }
    let wall_s = start.elapsed().as_secs_f64();

    // Drain: the run is only done once every follower acked every LSN.
    let drain_start = std::time::Instant::now();
    for (stats, _) in &replicas {
        while stats.acked.load(Ordering::Relaxed) < inserts as u64 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let drain_ms = drain_start.elapsed().as_secs_f64() * 1e3;
    let bytes = replicas
        .iter()
        .map(|(s, _)| s.bytes.load(Ordering::Relaxed))
        .sum();
    let snapshots = replicas
        .iter()
        .map(|(s, _)| s.snapshots.load(Ordering::Relaxed))
        .sum();

    stop.store(true, Ordering::Relaxed);
    for (_, join) in replicas {
        let _ = join.join();
    }
    client.quit().expect("quit");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&idx);
    let _ = std::fs::remove_dir_all(&wal);
    RunStats {
        followers,
        inserts,
        wall_s,
        per_sec: inserts as f64 / wall_s,
        mean_us: wall_s * 1e6 / inserts as f64,
        drain_ms,
        bytes,
        snapshots,
    }
}

fn write_json(initial: usize, inserts: usize, runs: &[RunStats]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let baseline = runs
        .iter()
        .find(|r| r.followers == 0)
        .map_or(0.0, |r| r.per_sec);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"repl_lag\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{\"initial\": {initial}, \"len\": {SEQ_LEN}}},"
    );
    let _ = writeln!(out, "  \"inserts\": {inserts},");
    let _ = writeln!(out, "  \"pace_ms\": {PACE_MS},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"followers\": {}, \"inserts\": {}, \"wall_s\": {:.4}, \
             \"inserts_per_sec\": {:.1}, \"mean_us\": {:.2}, \"drain_ms\": {:.2}, \
             \"bytes_shipped\": {}, \"snapshots\": {}, \"overhead_vs_none\": {:.4}}}{comma}",
            r.followers,
            r.inserts,
            r.wall_s,
            r.per_sec,
            r.mean_us,
            r.drain_ms,
            r.bytes,
            r.snapshots,
            if r.per_sec > 0.0 {
                baseline / r.per_sec
            } else {
                0.0
            }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(bench::results_dir().join("repl_lag.json"), out)
}

fn main() {
    let fast = bench::fast_mode();
    let initial = if fast { 50 } else { 200 };
    let inserts = if fast { 200 } else { 1000 };

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, initial, SEQ_LEN, 0x4E91);
    let snapshot = scratch("snapshot");
    SeqIndex::build(&corpus, IndexConfig::default())
        .expect("non-empty corpus")
        .save(&snapshot)
        .expect("save snapshot");

    let mut t = Table::new(
        format!("Replication lag ({initial} walks × {SEQ_LEN}, {inserts} wire inserts)"),
        &[
            "followers",
            "inserts/s",
            "mean µs",
            "drain ms",
            "bytes",
            "vs none",
        ],
    );
    let mut runs = Vec::new();
    for followers in [0usize, 1] {
        // Warm-up, then best-of-3 to suppress scheduler noise.
        let _ = run_one(&snapshot, followers, inserts / 10, 0xDEAD);
        let r = (0..3)
            .map(|_| run_one(&snapshot, followers, inserts, 0x4E91))
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("three passes");
        runs.push(r);
    }
    let baseline = runs[0].per_sec;
    for r in &runs {
        t.push(vec![
            r.followers.to_string(),
            f2(r.per_sec),
            f2(r.mean_us),
            f2(r.drain_ms),
            r.bytes.to_string(),
            format!("{:.2}x", baseline / r.per_sec),
        ]);
    }
    t.print();
    write_json(initial, inserts, &runs).expect("write results json");
    let _ = std::fs::remove_dir_all(&snapshot);
}
