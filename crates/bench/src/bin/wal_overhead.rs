//! Durability tax: insert throughput of a live index with no WAL, and
//! with a WAL under each fsync policy (`never`, `every 8`, `always`).
//!
//! Every run starts from an identical saved snapshot and inserts the same
//! seeded random walks; runs differ only in what the durability layer
//! does per acknowledged insert. Writes `results/wal_overhead.json`.
//!
//! `cargo run -p bench --release --bin wal_overhead`

use bench::table::{f2, Table};
use simquery::index::{IndexConfig, SeqIndex};
use simquery::shared::SharedIndex;
use simwal::FsyncPolicy;
use std::path::PathBuf;
use tseries::rng::SeededRng;
use tseries::{random_walk, Corpus, CorpusKind};

const SEQ_LEN: usize = 64;

#[derive(Clone, Copy)]
enum Mode {
    NoWal,
    Wal(FsyncPolicy),
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Self::NoWal => "none",
            Self::Wal(FsyncPolicy::Never) => "never",
            Self::Wal(FsyncPolicy::EveryN(_)) => "every8",
            Self::Wal(FsyncPolicy::Always) => "always",
        }
    }
}

struct RunStats {
    mode: &'static str,
    inserts: usize,
    wall_s: f64,
    per_sec: f64,
    mean_us: f64,
    fsyncs: u64,
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simseq_wal_overhead_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_one(snapshot: &PathBuf, mode: Mode, inserts: usize, seed: u64) -> RunStats {
    // Fresh directories per run so every mode replays the same script
    // against the same starting state.
    let idx = scratch(&format!("idx_{}", mode.label()));
    let wal = scratch(&format!("wal_{}", mode.label()));
    copy_dir(snapshot, &idx);

    let shared = match mode {
        Mode::NoWal => SharedIndex::new(SeqIndex::open(&idx, 64).expect("open snapshot")),
        Mode::Wal(policy) => {
            SharedIndex::open_durable(&idx, &wal, 64, policy)
                .expect("open durable")
                .0
        }
    };

    let mut rng = SeededRng::seed_from_u64(seed);
    let series: Vec<_> = (0..inserts)
        .map(|_| random_walk(&mut rng, SEQ_LEN, 100.0))
        .collect();

    let start = std::time::Instant::now();
    for ts in &series {
        shared.insert_series(ts).expect("insert");
    }
    let wall_s = start.elapsed().as_secs_f64();
    let fsyncs = shared.wal_stats().map_or(0, |s| s.fsyncs);

    drop(shared);
    let _ = std::fs::remove_dir_all(&idx);
    let _ = std::fs::remove_dir_all(&wal);
    RunStats {
        mode: mode.label(),
        inserts,
        wall_s,
        per_sec: inserts as f64 / wall_s,
        mean_us: wall_s * 1e6 / inserts as f64,
        fsyncs,
    }
}

fn copy_dir(src: &PathBuf, dst: &PathBuf) {
    std::fs::create_dir_all(dst).expect("create scratch dir");
    for entry in std::fs::read_dir(src).expect("read snapshot dir") {
        let entry = entry.expect("dir entry");
        if entry.file_name() != "LOCK" {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy snapshot file");
        }
    }
}

fn write_json(initial: usize, inserts: usize, runs: &[RunStats]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let baseline = runs
        .iter()
        .find(|r| r.mode == "none")
        .map_or(0.0, |r| r.per_sec);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"wal_overhead\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{\"initial\": {initial}, \"len\": {SEQ_LEN}}},"
    );
    let _ = writeln!(out, "  \"inserts\": {inserts},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"fsync\": \"{}\", \"inserts\": {}, \"wall_s\": {:.4}, \
             \"inserts_per_sec\": {:.1}, \"mean_us\": {:.2}, \"fsyncs\": {}, \
             \"overhead_vs_none\": {:.4}}}{comma}",
            r.mode,
            r.inserts,
            r.wall_s,
            r.per_sec,
            r.mean_us,
            r.fsyncs,
            if r.per_sec > 0.0 {
                baseline / r.per_sec
            } else {
                0.0
            }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(bench::results_dir().join("wal_overhead.json"), out)
}

fn main() {
    let fast = bench::fast_mode();
    let initial = if fast { 100 } else { 400 };
    let inserts = if fast { 200 } else { 2000 };

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, initial, SEQ_LEN, 0x11AB);
    let snapshot = scratch("snapshot");
    SeqIndex::build(&corpus, IndexConfig::default())
        .expect("non-empty corpus")
        .save(&snapshot)
        .expect("save snapshot");

    let modes = [
        Mode::NoWal,
        Mode::Wal(FsyncPolicy::Never),
        Mode::Wal(FsyncPolicy::EveryN(8)),
        Mode::Wal(FsyncPolicy::Always),
    ];

    let mut t = Table::new(
        format!("WAL overhead ({initial} walks × {SEQ_LEN}, {inserts} inserts)"),
        &["fsync", "inserts/s", "mean µs", "fsyncs", "vs none"],
    );
    let mut runs = Vec::new();
    for mode in modes {
        // Warm-up, then best-of-3 to suppress scheduler noise.
        let _ = run_one(&snapshot, mode, inserts / 10, 0xDEAD);
        let r = (0..3)
            .map(|_| run_one(&snapshot, mode, inserts, 0x11AB))
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("three passes");
        runs.push(r);
    }
    let baseline = runs[0].per_sec;
    for r in &runs {
        t.push(vec![
            r.mode.into(),
            f2(r.per_sec),
            f2(r.mean_us),
            r.fsyncs.to_string(),
            format!("{:.2}x", baseline / r.per_sec),
        ]);
    }
    t.print();
    write_json(initial, inserts, &runs).expect("write results json");
    let _ = std::fs::remove_dir_all(&snapshot);
}
