//! Regenerates the paper's Figure 7.
//!
//! `cargo run -p bench --release --bin fig7` (env: REPRO_QUERIES, REPRO_FAST).

fn main() {
    let dir = bench::results_dir();
    for (i, table) in bench::figures::fig7().iter().enumerate() {
        table.print();
        let path = dir.join(format!("fig7_{i}.tsv"));
        table.save_tsv(&path).expect("write tsv");
        eprintln!("(saved {})", path.display());
    }
}
