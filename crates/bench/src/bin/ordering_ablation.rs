//! Regenerates the §4.4 ordering ablation.
//!
//! `cargo run -p bench --release --bin ordering_ablation`.

fn main() {
    let dir = bench::results_dir();
    for (i, table) in bench::figures::ordering_ablation().iter().enumerate() {
        table.print();
        let path = dir.join(format!("ordering_{i}.tsv"));
        table.save_tsv(&path).expect("write tsv");
        eprintln!("(saved {})", path.display());
    }
}
