//! Observability tax on the hot query path.
//!
//! Three modes over the same seeded corpus and query set, all running the
//! full plan path (`plan::run_timed`) plus the per-query slow-log check —
//! exactly what a `simserved` worker does per request:
//!
//! * `obs-off` — tracer sampling disabled (`sample = 0`) and the
//!   slow-query threshold at its default (off): every span guard is a
//!   no-op, every slow-log check is one branch;
//! * `obs-default` — the shipped defaults: 1-in-64 root sampling and a
//!   slow threshold high enough that it never fires (the check still
//!   runs);
//! * `obs-all` — worst case: every root sampled (`sample = 1`) into the
//!   bounded ring, threshold 0 so the slow log fires on every query.
//!
//! The acceptance bar: `obs-default` ≤ 2 % over `obs-off`. Writes
//! `results/obs_overhead.json`.
//!
//! `cargo run -p bench --release --bin obs_overhead`

use bench::table::{f2, Table};
use simobs::{SlowEntry, SlowLog};
use simquery::index::{IndexConfig, SeqIndex};
use simquery::plan::{self, EngineChoice, EnginePref, LogicalQuery};
use simquery::query::RangeSpec;
use simquery::stats::StatsRegistry;
use simquery::transform::Family;
use tseries::{Corpus, CorpusKind, TimeSeries};

const SEQ_LEN: usize = 64;

struct RunStats {
    mode: &'static str,
    queries: usize,
    wall_s: f64,
    per_sec: f64,
    mean_us: f64,
    spans: u64,
    slow_fired: u64,
}

/// One observability configuration under measurement.
#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    sample: u64,
    threshold_us: u64,
}

/// One measured pass: `rounds` sweeps over the query set with the global
/// tracer and slow log configured per `mode`.
fn run_mode(
    mode: Mode,
    index: &SeqIndex,
    queries: &[TimeSeries],
    family: &Family,
    spec: &RangeSpec,
    rounds: usize,
) -> RunStats {
    let tracer = simobs::trace::global();
    tracer.drain(usize::MAX); // start from an empty ring
    tracer.set_sample(mode.sample);
    let spans_before = tracer.recorded();
    let stats = StatsRegistry::new();
    let slow = SlowLog::new(128);
    slow.set_threshold_us(mode.threshold_us);

    let n = queries.len() * rounds;
    let start = std::time::Instant::now();
    let mut total = 0usize;
    for _ in 0..rounds {
        for q in queries {
            let lq = LogicalQuery::range(family.clone(), *spec)
                .with_engine(EnginePref::Force(EngineChoice::Mt));
            let t0 = std::time::Instant::now();
            let (chosen, out, timings) =
                plan::run_timed(index, &stats, &lq, Some(q)).expect("plan run");
            let total_us = t0.elapsed().as_micros() as u64;
            let m = out.metrics();
            slow.observe(total_us, || SlowEntry {
                query: String::from("bench"),
                plan: chosen.engine.as_str().to_string(),
                est_pages: chosen.est_pages,
                actual_pages: m.record_page_accesses,
                est_comparisons: chosen.est_comparisons,
                actual_comparisons: m.comparisons,
                candidates: m.candidates,
                matches: 0,
                plan_us: timings.plan_us,
                exec_us: timings.exec_us,
                total_us: 0,
            });
            total += match &out {
                plan::PlanOutput::Range(r) => r.matches.len(),
                _ => 0,
            };
        }
    }
    std::hint::black_box(total);
    let wall_s = start.elapsed().as_secs_f64();
    tracer.set_sample(0);
    RunStats {
        mode: mode.name,
        queries: n,
        wall_s,
        per_sec: n as f64 / wall_s,
        mean_us: wall_s * 1e6 / n as f64,
        spans: tracer.recorded() - spans_before,
        slow_fired: slow.fired(),
    }
}

fn write_json(n: usize, rounds: usize, runs: &[RunStats]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let off = runs.iter().find(|r| r.mode == "obs-off").unwrap();
    let default = runs.iter().find(|r| r.mode == "obs-default").unwrap();
    let all = runs.iter().find(|r| r.mode == "obs-all").unwrap();
    let default_pct = (default.mean_us / off.mean_us - 1.0) * 100.0;
    let all_pct = (all.mean_us / off.mean_us - 1.0) * 100.0;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"obs_overhead\",");
    let _ = writeln!(out, "  \"corpus\": {{\"n\": {n}, \"len\": {SEQ_LEN}}},");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"queries\": {}, \"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.1}, \"mean_us\": {:.2}, \"spans\": {}, \
             \"slow_fired\": {}}}{comma}",
            r.mode, r.queries, r.wall_s, r.per_sec, r.mean_us, r.spans, r.slow_fired
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"default_overhead_pct_vs_off\": {default_pct:.2},");
    let _ = writeln!(out, "  \"all_overhead_pct_vs_off\": {all_pct:.2}");
    let _ = writeln!(out, "}}");
    std::fs::write(bench::results_dir().join("obs_overhead.json"), out)
}

fn main() {
    let fast = bench::fast_mode();
    let n = if fast { 120 } else { 400 };
    let rounds = if fast { 5 } else { 20 };
    let query_count = 40.min(n);

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, SEQ_LEN, 0x0B5);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    let family = Family::moving_averages(4..=12, SEQ_LEN);
    let spec = RangeSpec::correlation(0.95);
    let queries: Vec<TimeSeries> = corpus.series()[..query_count].to_vec();

    // Warm-up, then five interleaved repetitions keeping the best of each
    // mode — interleaving exposes every mode to the same scheduler and
    // thermal conditions.
    let modes = [
        Mode {
            name: "obs-off",
            sample: 0,
            threshold_us: u64::MAX,
        },
        Mode {
            name: "obs-default",
            sample: simobs::trace::DEFAULT_SAMPLE,
            threshold_us: u64::MAX,
        },
        Mode {
            name: "obs-all",
            sample: 1,
            threshold_us: 0,
        },
    ];
    for mode in modes {
        let _ = run_mode(mode, &index, &queries, &family, &spec, rounds);
    }
    let mut best: [Option<RunStats>; 3] = [None, None, None];
    for _ in 0..5 {
        for (slot, mode) in modes.into_iter().enumerate() {
            let r = run_mode(mode, &index, &queries, &family, &spec, rounds);
            if best[slot].as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
                best[slot] = Some(r);
            }
        }
    }
    let runs: Vec<RunStats> = best.into_iter().map(Option::unwrap).collect();

    let off_us = runs[0].mean_us;
    let mut t = Table::new(
        format!(
            "observability overhead ({n} walks × {SEQ_LEN}, {query_count} queries × {rounds} rounds)"
        ),
        &["mode", "queries/s", "mean µs", "vs off", "spans", "slow"],
    );
    for r in &runs {
        t.push(vec![
            r.mode.into(),
            f2(r.per_sec),
            f2(r.mean_us),
            format!("{:.3}x", r.mean_us / off_us),
            r.spans.to_string(),
            r.slow_fired.to_string(),
        ]);
    }
    t.print();
    // Sanity: the instrumented modes actually instrumented something.
    let default = &runs[1];
    let all = &runs[2];
    assert!(all.spans > 0, "obs-all recorded no spans");
    assert!(all.slow_fired > 0, "threshold 0 must fire every miss");
    let default_pct = (default.mean_us / off_us - 1.0) * 100.0;
    let all_pct = (all.mean_us / off_us - 1.0) * 100.0;
    println!("default-sampling overhead: {default_pct:+.2}% (bar: <= 2%)");
    println!("record-everything overhead: {all_pct:+.2}%");
    write_json(n, rounds, &runs).expect("write results json");
}
