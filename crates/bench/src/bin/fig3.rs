//! Regenerates the paper's Figure 3.
//!
//! `cargo run -p bench --release --bin fig3` (env: REPRO_QUERIES, REPRO_FAST).

fn main() {
    let dir = bench::results_dir();
    for (i, table) in bench::figures::fig3().iter().enumerate() {
        table.print();
        let path = dir.join(format!("fig3_{i}.tsv"));
        table.save_tsv(&path).expect("write tsv");
        eprintln!("(saved {})", path.display());
    }
}
