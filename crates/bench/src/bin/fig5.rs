//! Regenerates the paper's Figure 5.
//!
//! `cargo run -p bench --release --bin fig5` (env: REPRO_QUERIES, REPRO_FAST).

fn main() {
    let dir = bench::results_dir();
    for (i, table) in bench::figures::fig5().iter().enumerate() {
        table.print();
        let path = dir.join(format!("fig5_{i}.tsv"));
        table.save_tsv(&path).expect("write tsv");
        eprintln!("(saved {})", path.display());
    }
}
