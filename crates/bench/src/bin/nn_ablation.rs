//! Nearest-neighbour strategy ablation on the R*-tree substrate: the
//! paper's NN sketch says "use any kind of metric (such as MINDIST or
//! MINMAXDIST…) to prune the search". Three strategies compared:
//!
//! * best-first (priority queue on MINDIST — Hjaltason–Samet style),
//! * depth-first branch-and-bound on MINDIST (Roussopoulos et al.),
//! * the same DFS with MINMAXDIST seeding (k = 1).
//!
//! `cargo run -p bench --release --bin nn_ablation`

use bench::table::{f2, Table};
use rstartree::{bulk_load_str, MemStore, Params, RStarTree, Rect};
use tseries::rng::SeededRng;

fn main() {
    let mut rng = SeededRng::seed_from_u64(512);
    let n = 100_000;
    let items: Vec<(Rect<2>, u64)> = (0..n)
        .map(|i| {
            (
                Rect::point([rng.random_range(-1e4..1e4), rng.random_range(-1e4..1e4)]),
                i as u64,
            )
        })
        .collect();
    let tree: RStarTree<2, MemStore<2>> =
        bulk_load_str(MemStore::new(), Params::with_max(32), items);
    let queries: Vec<[f64; 2]> = (0..200)
        .map(|_| {
            [
                rng.random_range(-1.2e4..1.2e4),
                rng.random_range(-1.2e4..1.2e4),
            ]
        })
        .collect();

    let mut t = Table::new(
        format!("NN strategy ablation ({n} uniform 2-d points, 200 queries)"),
        &[
            "k",
            "best-first nodes",
            "DFS nodes",
            "DFS+MINMAXDIST nodes",
            "best-first ms",
            "DFS ms",
        ],
    );
    for k in [1usize, 5, 20] {
        let mut bf_nodes = 0.0;
        let mut dfs_nodes = 0.0;
        let mut mm_nodes = 0.0;
        let mut bf_ms = 0.0;
        let mut dfs_ms = 0.0;
        for q in &queries {
            let start = std::time::Instant::now();
            let (bf, s1) = tree
                .nearest_by(k, |r| r.min_dist_sq(q), |r, _| Some(r.min_dist_sq(q)))
                .unwrap();
            bf_ms += start.elapsed().as_secs_f64() * 1e3;
            let start = std::time::Instant::now();
            let (dfs, s2) = tree.nearest_dfs(k, q, false).unwrap();
            dfs_ms += start.elapsed().as_secs_f64() * 1e3;
            let (mm, s3) = tree.nearest_dfs(k, q, true).unwrap();
            bf_nodes += s1.nodes_accessed as f64;
            dfs_nodes += s2.nodes_accessed as f64;
            mm_nodes += s3.nodes_accessed as f64;
            // All three agree, always.
            assert_eq!(bf.len(), dfs.len());
            for ((a, b), c) in bf.iter().zip(&dfs).zip(&mm) {
                assert!((a.dist - b.dist).abs() < 1e-9);
                assert!((a.dist - c.dist).abs() < 1e-9);
            }
        }
        let m = 1.0 / queries.len() as f64;
        t.push(vec![
            k.to_string(),
            f2(bf_nodes * m),
            f2(dfs_nodes * m),
            f2(mm_nodes * m),
            f2(bf_ms * m),
            f2(dfs_ms * m),
        ]);
    }
    t.print();
    t.save_tsv(&bench::results_dir().join("nn_ablation.tsv"))
        .expect("save");
}
