//! Plan-layer tax and result-cache payoff.
//!
//! Three modes over the same seeded corpus and query set:
//!
//! * `direct` — the pre-planner dispatch: call the MT engine straight
//!   (the PR 6 baseline);
//! * `planned-miss` — the full plan path on an all-miss workload:
//!   fingerprint, cache lookup, cost-model planning, execution, cache
//!   fill (the cache is cleared every round so nothing ever hits);
//! * `cached-hit` — the same queries repeated against a warm cache, so
//!   every round is answered from the epoch-keyed LRU.
//!
//! The acceptance bar: planning + cache bookkeeping ≤ 5 % over direct
//! dispatch on misses, and ≥ 2× throughput on the repeated-query
//! hit workload. Writes `results/plan_overhead.json`.
//!
//! `cargo run -p bench --release --bin plan_overhead`

use bench::table::{f2, Table};
use simquery::engine::mtindex;
use simquery::index::{IndexConfig, SeqIndex};
use simquery::plan::{self, EngineChoice, EnginePref, LogicalQuery, PlanCache, QueryEpoch};
use simquery::query::RangeSpec;
use simquery::stats::StatsRegistry;
use simquery::transform::Family;
use tseries::{Corpus, CorpusKind, TimeSeries};

const SEQ_LEN: usize = 64;

struct RunStats {
    mode: &'static str,
    queries: usize,
    wall_s: f64,
    per_sec: f64,
    mean_us: f64,
}

fn measure(mode: &'static str, queries: usize, f: impl FnOnce()) -> RunStats {
    let start = std::time::Instant::now();
    f();
    let wall_s = start.elapsed().as_secs_f64();
    RunStats {
        mode,
        queries,
        wall_s,
        per_sec: queries as f64 / wall_s,
        mean_us: wall_s * 1e6 / queries as f64,
    }
}

/// One full pass over the query set, `rounds` times, direct MT dispatch.
fn run_direct(
    index: &SeqIndex,
    queries: &[TimeSeries],
    family: &Family,
    spec: &RangeSpec,
    rounds: usize,
) -> RunStats {
    measure("direct", queries.len() * rounds, || {
        let mut total = 0usize;
        for _ in 0..rounds {
            for q in queries {
                total += mtindex::range_query(index, q, family, spec)
                    .expect("healthy in-memory index")
                    .matches
                    .len();
            }
        }
        std::hint::black_box(total);
    })
}

/// The full plan path with the cache cleared per round: every query pays
/// fingerprinting, the LRU miss, Eq. 18–20 planning, and the cache fill.
fn run_planned_miss(
    index: &SeqIndex,
    queries: &[TimeSeries],
    family: &Family,
    spec: &RangeSpec,
    rounds: usize,
) -> RunStats {
    let stats = StatsRegistry::new();
    let cache = PlanCache::new(queries.len() * 2);
    let epoch = QueryEpoch::default();
    measure("planned-miss", queries.len() * rounds, || {
        let mut total = 0usize;
        for _ in 0..rounds {
            cache.clear();
            for q in queries {
                let lq = LogicalQuery::range(family.clone(), *spec)
                    .with_engine(EnginePref::Force(EngineChoice::Mt));
                let fp = lq.fingerprint(Some(q));
                if let Some((_, out)) = cache.get(fp, epoch) {
                    total += out.metrics().comparisons as usize; // never taken
                    continue;
                }
                let (chosen, out) = plan::run(index, &stats, &lq, Some(q)).expect("plan run");
                total += match &out {
                    plan::PlanOutput::Range(r) => r.matches.len(),
                    _ => 0,
                };
                cache.put(fp, epoch, chosen, out);
            }
        }
        std::hint::black_box(total);
    })
}

/// The same queries against a warm cache: round one fills, the measured
/// rounds all hit.
fn run_cached_hit(
    index: &SeqIndex,
    queries: &[TimeSeries],
    family: &Family,
    spec: &RangeSpec,
    rounds: usize,
) -> RunStats {
    let stats = StatsRegistry::new();
    let cache = PlanCache::new(queries.len() * 2);
    let epoch = QueryEpoch::default();
    let warm = |cache: &PlanCache| {
        for q in queries {
            let lq = LogicalQuery::range(family.clone(), *spec)
                .with_engine(EnginePref::Force(EngineChoice::Mt));
            let fp = lq.fingerprint(Some(q));
            if cache.get(fp, epoch).is_none() {
                let (chosen, out) = plan::run(index, &stats, &lq, Some(q)).expect("plan run");
                cache.put(fp, epoch, chosen, out);
            }
        }
    };
    warm(&cache);
    let r = measure("cached-hit", queries.len() * rounds, || {
        let mut total = 0usize;
        for _ in 0..rounds {
            for q in queries {
                let lq = LogicalQuery::range(family.clone(), *spec)
                    .with_engine(EnginePref::Force(EngineChoice::Mt));
                let fp = lq.fingerprint(Some(q));
                let (_, out) = cache.get(fp, epoch).expect("warm cache must hit");
                total += match &out {
                    plan::PlanOutput::Range(r) => r.matches.len(),
                    _ => 0,
                };
            }
        }
        std::hint::black_box(total);
    });
    let counters = cache.counters();
    assert_eq!(
        counters.misses as usize,
        queries.len(),
        "only the warm-up may miss"
    );
    r
}

fn write_json(n: usize, rounds: usize, runs: &[RunStats]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let direct = runs.iter().find(|r| r.mode == "direct").unwrap();
    let miss = runs.iter().find(|r| r.mode == "planned-miss").unwrap();
    let hit = runs.iter().find(|r| r.mode == "cached-hit").unwrap();
    let overhead_pct = (miss.mean_us / direct.mean_us - 1.0) * 100.0;
    let speedup = hit.per_sec / direct.per_sec;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"benchmark\": \"plan_overhead\",");
    let _ = writeln!(out, "  \"corpus\": {{\"n\": {n}, \"len\": {SEQ_LEN}}},");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"queries\": {}, \"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.1}, \"mean_us\": {:.2}}}{comma}",
            r.mode, r.queries, r.wall_s, r.per_sec, r.mean_us
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"miss_overhead_pct_vs_direct\": {overhead_pct:.2},");
    let _ = writeln!(out, "  \"hit_speedup_vs_direct\": {speedup:.2}");
    let _ = writeln!(out, "}}");
    std::fs::write(bench::results_dir().join("plan_overhead.json"), out)
}

fn main() {
    let fast = bench::fast_mode();
    let n = if fast { 120 } else { 400 };
    let rounds = if fast { 5 } else { 20 };
    let query_count = 40.min(n);

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, SEQ_LEN, 0x51A5);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    let family = Family::moving_averages(4..=12, SEQ_LEN);
    let spec = RangeSpec::correlation(0.95);
    let queries: Vec<TimeSeries> = corpus.series()[..query_count].to_vec();

    // Warm-up, then five interleaved repetitions (direct, miss, hit per
    // rep) keeping the best of each — interleaving exposes every mode to
    // the same scheduler/thermal conditions, which back-to-back blocks
    // do not.
    let _ = run_direct(&index, &queries, &family, &spec, rounds);
    let _ = run_planned_miss(&index, &queries, &family, &spec, rounds);
    let keep_min = |best: &mut Option<RunStats>, r: RunStats| {
        if best.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
            *best = Some(r);
        }
    };
    let (mut direct, mut miss, mut hit) = (None, None, None);
    for _ in 0..5 {
        keep_min(
            &mut direct,
            run_direct(&index, &queries, &family, &spec, rounds),
        );
        keep_min(
            &mut miss,
            run_planned_miss(&index, &queries, &family, &spec, rounds),
        );
        keep_min(
            &mut hit,
            run_cached_hit(&index, &queries, &family, &spec, rounds),
        );
    }
    let runs = vec![direct.unwrap(), miss.unwrap(), hit.unwrap()];

    let direct_us = runs[0].mean_us;
    let mut t = Table::new(
        format!(
            "plan layer overhead ({n} walks × {SEQ_LEN}, {query_count} queries × {rounds} rounds)"
        ),
        &["mode", "queries/s", "mean µs", "vs direct"],
    );
    for r in &runs {
        t.push(vec![
            r.mode.into(),
            f2(r.per_sec),
            f2(r.mean_us),
            format!("{:.3}x", r.mean_us / direct_us),
        ]);
    }
    t.print();
    let overhead_pct = (runs[1].mean_us / direct_us - 1.0) * 100.0;
    let speedup = runs[2].per_sec / runs[0].per_sec;
    println!("cache-miss planning overhead: {overhead_pct:+.2}% (bar: <= 5%)");
    println!("cache-hit speedup: {speedup:.2}x (bar: >= 2x)");
    write_json(n, rounds, &runs).expect("write results json");
}
