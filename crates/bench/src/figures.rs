//! Regenerators for every figure of the paper's evaluation (§1 Figures 1–2,
//! §4.1 Figures 3–4, §5 Figures 5–9) plus the §4.4 ordering ablation.
//!
//! Each returns printable [`Table`]s whose *shapes* are compared against
//! the paper in `EXPERIMENTS.md`; absolute times differ (modern CPU,
//! simulated disk — see DESIGN.md §2.3).

use crate::measure::{average_range_queries, measure_join, Averages};
use crate::table::{f2, f3, Table};
use crate::{fast_mode, query_count};
use simquery::cost::CostModel;
use simquery::engine::{join, mtindex, seqscan, stindex};
use simquery::feature::SeqFeatures;
use simquery::ordering::OrderedFamily;
use simquery::partition::PartitionStrategy;
use simquery::prelude::*;
use simquery::tmbr::TransformMbr;
use simquery::transform::Transform;
use tseries::{
    euclidean, momentum, moving_average_circular, shift_right, spiky_pair, Market, MarketConfig,
};

const N: usize = 128;

fn stock_corpus(count: usize, seed: u64) -> Corpus {
    Corpus::generate(CorpusKind::StockCloses, count, N, seed)
}

fn build(corpus: &Corpus) -> SeqIndex {
    SeqIndex::build(corpus, IndexConfig::default()).expect("non-empty corpus")
}

// ---------------------------------------------------------------------
// Figure 1 — Example 1.1: normalization + moving average reveals
// similarity between noisy index series.
// ---------------------------------------------------------------------

/// Figure 1: raw vs normalized vs smoothed distances, and the shortest
/// qualifying moving average per pair.
pub fn fig1() -> Vec<Table> {
    // Volume-like series: shared sector trend + heavy daily jitter.
    let cfg = MarketConfig {
        stocks: 12,
        days: N,
        sectors: 2,
        sector_weight: 0.97,
        volatility: 0.09,
        spike_prob: 0.0,
        daily_noise: 0.30,
    };
    let closes = Market::new(cfg, 1999).closes();

    let mut t = Table::new(
        "Fig. 1 — Example 1.1: distances before/after normalization and smoothing \
         (paper: COMPV–NYV 2873 → <3 at 9-day MA; COMPV–DECL 12939 → <3 at 19-day MA)",
        &[
            "pair",
            "raw D",
            "normalized D",
            "shortest MA with D<3",
            "D at that MA",
        ],
    );
    for (a, b) in [(0usize, 2usize), (0, 4), (1, 3)] {
        let (x, y) = (&closes[a], &closes[b]);
        let raw = euclidean(x, y);
        let nx = x.normal_form().expect("non-degenerate").series;
        let ny = y.normal_form().expect("non-degenerate").series;
        let normalized = euclidean(&nx, &ny);
        let shortest = (1..=40).find_map(|m| {
            let d = euclidean(
                &moving_average_circular(&nx, m),
                &moving_average_circular(&ny, m),
            );
            (d < 3.0).then_some((m, d))
        });
        let (m_str, d_str) = match shortest {
            Some((m, d)) => (format!("{m}-day"), f3(d)),
            None => ("none ≤ 40".into(), "-".into()),
        };
        t.push(vec![
            format!("S{a:02}–S{b:02}"),
            f2(raw),
            f3(normalized),
            m_str,
            d_str,
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------
// Figure 2 — Example 1.2: momentum + 2-day shift aligns news spikes.
// ---------------------------------------------------------------------

/// Figure 2: momentum distances before/after the aligning shift, in the
/// time domain and as composed frequency-domain transformations.
pub fn fig2() -> Vec<Table> {
    let (pcg, pcl) = spiky_pair(N, 60, 2);
    let m_pcg = momentum(&pcg, 1);
    let m_pcl = momentum(&pcl, 1);

    let mut t = Table::new(
        "Fig. 2 — Example 1.2: spike alignment by shifting one momentum \
         (paper: 13.01 → 5.65 after a 2-day shift)",
        &["comparison", "distance"],
    );
    t.push(vec![
        "time domain: D(mom(PCG), mom(PCL))".into(),
        f3(euclidean(&m_pcg, &m_pcl)),
    ]);
    t.push(vec![
        "time domain: D(shift₂(mom(PCG)), mom(PCL))".into(),
        f3(euclidean(&shift_right(&m_pcg, 2), &m_pcl)),
    ]);

    let fx = SeqFeatures::extract(&pcg).expect("non-degenerate");
    let fy = SeqFeatures::extract(&pcl).expect("non-degenerate");
    let mom = Transform::momentum(1, N);
    let target = SeqFeatures::from_spectrum(mom.apply_spectrum(&fy.spectrum), fy.mean, fy.std);
    for s in 0..=4 {
        let composed = Transform::circular_shift(s, N).compose(&mom);
        t.push(vec![
            format!("frequency domain: D(shift{s}(mom(x̂)), mom(ŷ))"),
            f3(composed.distance_data_only(&fx, &target)),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------
// Figure 3 (+ Fig. 4's algebra) — MBR decomposition of the MA family.
// ---------------------------------------------------------------------

/// Figure 3: second-DFT-coefficient transformation points of mv(1..40) and
/// their mult-MBR / add-MBR decomposition; plus Fig. 4's worked rectangle.
pub fn fig3() -> Vec<Table> {
    let family = Family::moving_averages(1..=40, N);
    let mut pts = Table::new(
        "Fig. 3 — mv(1..40) transformation points at the 2nd DFT coefficient \
         (dims: |F₂| multiplier a, ∠F₂ addend b)",
        &["m", "a (|F2| mult)", "b (angle add)"],
    );
    for (i, tr) in family.transforms().iter().enumerate() {
        pts.push(vec![
            format!("{}", i + 1),
            f3(tr.feat_a()[4]),
            f3(tr.feat_b()[5]),
        ]);
    }

    let mbr = TransformMbr::of_family(&family);
    let mut env = Table::new(
        "Fig. 3 — mult-MBR and add-MBR envelopes per index dimension",
        &["dim", "meaning", "mult lo", "mult hi", "add lo", "add hi"],
    );
    let names = ["mean", "std", "|F1|", "angle F1", "|F2|", "angle F2"];
    for (d, name) in names.iter().enumerate() {
        env.push(vec![
            d.to_string(),
            (*name).into(),
            f3(mbr.mult_lo[d]),
            f3(mbr.mult_hi[d]),
            f3(mbr.add_lo[d]),
            f3(mbr.add_hi[d]),
        ]);
    }

    // Fig. 4: the worked data rectangle from the paper's illustration.
    let mut fig4 = Table::new(
        "Fig. 4 — a data rectangle before/after Eq. 12 (paper's illustration: \
         |F₂| ∈ [7, 17] → [0.85·7, 17]; ∠F₂ ∈ [1, 3] → [1−0.96, 3])",
        &["dim", "before lo", "before hi", "after lo", "after hi"],
    );
    let mut demo = TransformMbr::of_family(&family);
    demo.mult_lo = [1.0; 6];
    demo.mult_hi = [1.0; 6];
    demo.add_lo = [0.0; 6];
    demo.add_hi = [0.0; 6];
    demo.mult_lo[4] = 0.85;
    demo.add_lo[5] = -0.96;
    let mut lo = [0.0; 6];
    let mut hi = [0.0; 6];
    lo[4] = 7.0;
    hi[4] = 17.0;
    lo[5] = 1.0;
    hi[5] = 3.0;
    let x = rstartree::Rect { lo, hi };
    let y = demo.apply_to_rect(&x);
    for (d, name) in [(4usize, "|F2|"), (5, "angle F2")] {
        fig4.push(vec![
            name.into(),
            f2(x.lo[d]),
            f2(x.hi[d]),
            f2(y.lo[d]),
            f2(y.hi[d]),
        ]);
    }

    vec![pts, env, fig4]
}

// ---------------------------------------------------------------------
// Figure 5 — Query 1 time vs number of sequences.
// ---------------------------------------------------------------------

/// Figure 5: time/accesses per query, varying corpus size (synthetic random
/// walks, |T| = 16 = mv(10..25), ρ = 0.96).
pub fn fig5() -> Vec<Table> {
    let sizes: &[usize] = if fast_mode() {
        &[500, 1000, 2000]
    } else {
        &[500, 1000, 2000, 4000, 8000, 12000]
    };
    let family = Family::moving_averages(10..=25, N);
    let spec = RangeSpec::correlation(0.96);
    let queries = query_count();

    let mut t = Table::new(
        format!(
            "Fig. 5 — Query 1 per-query averages vs corpus size \
             (synthetic walks, |T|=16 mv(10..25), ρ=0.96, {queries} queries)"
        ),
        &[
            "sequences",
            "scan ms",
            "scan(8thr) ms",
            "ST ms",
            "MT ms",
            "ST nodes",
            "MT nodes",
            "scan cmps",
            "ST cmps",
            "MT cmps",
            "avg |output|",
        ],
    );
    // One big corpus, truncated per size so smaller corpora are prefixes.
    let full = Corpus::generate(
        CorpusKind::SyntheticWalks,
        *sizes.last().expect("non-empty"),
        N,
        50,
    );
    for &size in sizes {
        let corpus = full.truncated(size);
        let index = build(&corpus);
        let scan = average_range_queries(&index, &corpus, queries, 1, |i, q| {
            seqscan::range_query(i, q, &family, &spec)
        });
        let par = average_range_queries(&index, &corpus, queries, 1, |i, q| {
            seqscan::range_query_parallel(i, q, &family, &spec, 8)
        });
        let st = average_range_queries(&index, &corpus, queries, 1, |i, q| {
            stindex::range_query(i, q, &family, &spec)
        });
        let mt = average_range_queries(&index, &corpus, queries, 1, |i, q| {
            mtindex::range_query(i, q, &family, &spec)
        });
        t.push(vec![
            size.to_string(),
            f2(scan.wall_ms),
            f2(par.wall_ms),
            f2(st.wall_ms),
            f2(mt.wall_ms),
            f2(st.node_accesses),
            f2(mt.node_accesses),
            f2(scan.comparisons),
            f2(st.comparisons),
            f2(mt.comparisons),
            f2(mt.output),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------
// Figure 6 — Query 1 time vs number of transformations.
// ---------------------------------------------------------------------

/// Figure 6: time/accesses per query, varying |T| = 1..30 (mv(5..)), stock
/// corpus of 1068 × 128.
pub fn fig6() -> Vec<Table> {
    let counts: &[usize] = if fast_mode() {
        &[1, 8, 16]
    } else {
        &[1, 2, 4, 8, 12, 16, 20, 24, 30]
    };
    let corpus = stock_corpus(1068, 60);
    let index = build(&corpus);
    let spec = RangeSpec::correlation(0.96);
    let queries = query_count();

    let mut t = Table::new(
        format!(
            "Fig. 6 — Query 1 per-query averages vs |T| \
             (1068 stocks × 128 days, mv(5..), ρ=0.96, {queries} queries)"
        ),
        &[
            "|T|",
            "scan ms",
            "ST ms",
            "MT ms",
            "ST nodes",
            "MT nodes",
            "avg |output|",
        ],
    );
    for &k in counts {
        let family = Family::moving_averages(5..=(4 + k), N);
        let scan = average_range_queries(&index, &corpus, queries, 2, |i, q| {
            seqscan::range_query(i, q, &family, &spec)
        });
        let st = average_range_queries(&index, &corpus, queries, 2, |i, q| {
            stindex::range_query(i, q, &family, &spec)
        });
        let mt = average_range_queries(&index, &corpus, queries, 2, |i, q| {
            mtindex::range_query(i, q, &family, &spec)
        });
        t.push(vec![
            k.to_string(),
            f2(scan.wall_ms),
            f2(st.wall_ms),
            f2(mt.wall_ms),
            f2(st.node_accesses),
            f2(mt.node_accesses),
            f2(mt.output),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------
// Figure 7 — Query 2 (spatial self-join) time vs |T|.
// ---------------------------------------------------------------------

/// Figure 7: join time varying |T| (mv(5..), ρ = 0.99, stock corpus).
pub fn fig7() -> Vec<Table> {
    let counts: &[usize] = if fast_mode() {
        &[1, 5, 10]
    } else {
        &[1, 5, 10, 15, 20, 25, 30]
    };
    // Sector weight calibrated so the ρ ≥ 0.99 join's output size is in
    // the paper's ballpark (small tens) at moderate |T|.
    let cfg = MarketConfig {
        stocks: 1068,
        days: N,
        sectors: 8,
        sector_weight: 0.6,
        spike_prob: 0.0,
        ..MarketConfig::default()
    };
    let market = Market::new(cfg, 70);
    let corpus = Corpus::from_parts(market.names(), market.closes());
    let index = build(&corpus);
    let spec = RangeSpec::correlation(0.99);

    let mut t = Table::new(
        "Fig. 7 — Query 2 (self-join) vs |T| (1068 stocks, mv(5..), ρ=0.99);          MT(6/MBR) is the §4.3 multi-rectangle remedy",
        &["|T|", "scan ms", "ST ms", "MT ms", "MT(6/MBR) ms", "ST nodes", "MT nodes", "|output|"],
    );
    for &k in counts {
        let family = Family::moving_averages(5..=(4 + k), N);
        let (scan, out) = measure_join(&index, |i| join::scan_join(i, &family, &spec));
        let (st, _) = measure_join(&index, |i| join::st_join(i, &family, &spec));
        let (mt, _) = measure_join(&index, |i| join::mt_join(i, &family, &spec));
        let mbrs =
            simquery::partition::partition(&family, &PartitionStrategy::EqualWidth { per_mbr: 6 });
        let (mt6, _) = measure_join(&index, |i| {
            join::mt_join_with_mbrs(i, &family, &spec, &mbrs)
        });
        t.push(vec![
            k.to_string(),
            f2(scan.wall_ms),
            f2(st.wall_ms),
            f2(mt.wall_ms),
            f2(mt6.wall_ms),
            f2(st.node_accesses),
            f2(mt.node_accesses),
            out.to_string(),
        ]);
    }
    vec![t]
}

// ---------------------------------------------------------------------
// Figures 8 & 9 — transformations per MBR.
// ---------------------------------------------------------------------

fn mbr_sweep(
    title: String,
    family: &Family,
    per_mbr_values: &[usize],
    corpus: &Corpus,
    index: &SeqIndex,
    queries: usize,
) -> Table {
    let spec = RangeSpec::correlation(0.96);
    let model = CostModel::default();
    let mut t = Table::new(
        title,
        &[
            "per MBR",
            "rects",
            "time ms",
            "disk accesses",
            "cost fn (Eq.20)",
            "cmps",
            "avg |output|",
        ],
    );
    for &per in per_mbr_values {
        let strategy = PartitionStrategy::EqualWidth { per_mbr: per };
        let mbrs = simquery::partition::partition(family, &strategy);
        let rects = mbrs.len();
        // Average metrics + the cost function over random queries.
        let mut avg = Averages::default();
        let mut cost_sum = 0.0;
        let mut rng = tseries::rng::SeededRng::seed_from_u64(3);
        for _ in 0..queries {
            let qi = rng.random_range(0..corpus.len());
            let query = &corpus.series()[qi];
            index.reset_counters().unwrap();
            let start = std::time::Instant::now();
            let (res, trav) =
                mtindex::range_query_with_mbrs(index, query, family, &spec, &mbrs, None)
                    .expect("valid query");
            avg.wall_ms += start.elapsed().as_secs_f64() * 1e3;
            avg.node_accesses += res.metrics.node_accesses as f64;
            // The paper's Fig. 8–9 access counts include every record
            // fetch of the post-processing step (no buffering assumed).
            avg.record_pages += res.metrics.record_fetches as f64;
            avg.comparisons += res.metrics.comparisons as f64;
            avg.output += res.matches.len() as f64;
            cost_sum += model.cost(&trav, index.leaf_capacity());
        }
        let k = 1.0 / queries as f64;
        t.push(vec![
            per.to_string(),
            rects.to_string(),
            f2(avg.wall_ms * k),
            f2((avg.node_accesses + avg.record_pages) * k),
            f2(cost_sum * k),
            f2(avg.comparisons * k),
            f2(avg.output * k),
        ]);
    }
    t
}

/// Figure 8: running time and disk accesses vs transformations-per-MBR for
/// mv(6..29) (24 transformations) on the stock corpus, with the Eq. 20
/// cost function.
pub fn fig8() -> Vec<Table> {
    let corpus = stock_corpus(1068, 80);
    let index = build(&corpus);
    let family = Family::moving_averages(6..=29, N);
    let pers: &[usize] = if fast_mode() {
        &[24, 6, 1]
    } else {
        &[24, 12, 8, 6, 4, 3, 2, 1]
    };
    let queries = query_count();
    vec![mbr_sweep(
        format!(
            "Fig. 8 — MT-index vs transformations per MBR \
             (mv(6..29), 1068 stocks, ρ=0.96, {queries} queries; paper: best at 6–8/MBR)"
        ),
        &family,
        pers,
        &corpus,
        &index,
        queries,
    )]
}

/// Figure 9: the same sweep after adding the inverted transformations
/// (48 members, two clusters) — the paper's bumps appear when an MBR spans
/// the gap; a clustering-based partitioning removes them.
pub fn fig9() -> Vec<Table> {
    let corpus = stock_corpus(1068, 90);
    let index = build(&corpus);
    let family = Family::moving_averages(6..=29, N).with_inverted();
    let pers: &[usize] = if fast_mode() {
        &[48, 16, 4]
    } else {
        &[48, 24, 16, 12, 8, 6, 4, 2, 1]
    };
    let queries = query_count();
    let mut tables = vec![mbr_sweep(
        format!(
            "Fig. 9 — MT-index vs transformations per MBR with inverted family \
             (±mv(6..29) = 48 transforms, two clusters, {queries} queries; \
             paper: bumps at 16/MBR and 48/MBR where an MBR straddles the clusters)"
        ),
        &family,
        pers,
        &corpus,
        &index,
        queries,
    )];

    // The §4.3/§5.2 remedy: cluster detection before packing.
    let spec = RangeSpec::correlation(0.96);
    let model = CostModel::default();
    let mut fix = Table::new(
        "Fig. 9 (remedy) — cluster-aware partitioning vs straddling rectangles",
        &[
            "partitioning",
            "rects",
            "time ms",
            "disk accesses",
            "cost fn (Eq.20)",
        ],
    );
    for (name, strategy) in [
        ("all-in-one (straddles)", PartitionStrategy::Single),
        ("k-means k=2", PartitionStrategy::KMeans { k: 2 }),
        (
            "agglomerative k=2",
            PartitionStrategy::Agglomerative { k: 2 },
        ),
        ("k-means k=6", PartitionStrategy::KMeans { k: 6 }),
    ] {
        let mbrs = simquery::partition::partition(&family, &strategy);
        let mut wall = 0.0;
        let mut accesses = 0.0;
        let mut cost = 0.0;
        let mut rng = tseries::rng::SeededRng::seed_from_u64(4);
        for _ in 0..queries {
            let qi = rng.random_range(0..corpus.len());
            index.reset_counters().unwrap();
            let start = std::time::Instant::now();
            let (res, trav) = mtindex::range_query_with_mbrs(
                &index,
                &corpus.series()[qi],
                &family,
                &spec,
                &mbrs,
                None,
            )
            .expect("valid query");
            wall += start.elapsed().as_secs_f64() * 1e3;
            accesses += res.metrics.paper_disk_accesses() as f64;
            cost += model.cost(&trav, index.leaf_capacity());
        }
        let k = 1.0 / queries as f64;
        fix.push(vec![
            name.into(),
            mbrs.len().to_string(),
            f2(wall * k),
            f2(accesses * k),
            f2(cost * k),
        ]);
    }
    tables.push(fix);
    tables
}

// ---------------------------------------------------------------------
// §4.4 — ordering ablation.
// ---------------------------------------------------------------------

/// The §4.4 ablation: engines with and without the ordering-based binary
/// search, on the (ordered) scale-factor family.
pub fn ordering_ablation() -> Vec<Table> {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2000, N, 95);
    let index = build(&corpus);
    let factors: Vec<f64> = (1..=64).map(|k| 0.5 + 0.125 * k as f64).collect();
    let ordered = OrderedFamily::scalings(&factors, N);
    let spec = RangeSpec::euclidean(9.0);
    let queries = query_count();

    let mut t = Table::new(
        format!(
            "§4.4 — ordering ablation (|T|=64 scale factors, {queries} queries): \
             binary search cuts comparisons to log|T| and ST traversals to one"
        ),
        &[
            "engine",
            "time ms",
            "node accesses",
            "comparisons",
            "avg |output|",
        ],
    );
    type Runner<'a> = (
        &'a str,
        Box<
            dyn Fn(&SeqIndex, &TimeSeries) -> Result<QueryResult, simquery::report::QueryError>
                + 'a,
        >,
    );
    let runners: Vec<Runner> = vec![
        (
            "scan",
            Box::new(|i, q| seqscan::range_query(i, q, ordered.family(), &spec)),
        ),
        (
            "scan+ordering",
            Box::new(|i, q| seqscan::range_query_ordered(i, q, &ordered, &spec)),
        ),
        (
            "ST",
            Box::new(|i, q| stindex::range_query(i, q, ordered.family(), &spec)),
        ),
        (
            "ST+ordering",
            Box::new(|i, q| stindex::range_query_ordered(i, q, &ordered, &spec)),
        ),
        (
            "MT",
            Box::new(|i, q| mtindex::range_query(i, q, ordered.family(), &spec)),
        ),
        (
            "MT+ordering",
            Box::new(|i, q| mtindex::range_query_ordered(i, q, &ordered, &spec)),
        ),
    ];
    for (name, run) in runners {
        let avg = average_range_queries(&index, &corpus, queries, 5, |i, q| run(i, q));
        t.push(vec![
            name.into(),
            f2(avg.wall_ms),
            f2(avg.node_accesses),
            f2(avg.comparisons),
            f2(avg.output),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_runs_and_finds_smoothing_windows() {
        let tables = fig1();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        // At least one pair becomes similar under some MA ≤ 40.
        assert!(tables[0].rows.iter().any(|r| r[3].contains("day")));
    }

    #[test]
    fn fig2_shift_reduces_distance() {
        let tables = fig2();
        let rows = &tables[0].rows;
        let before: f64 = rows[0][1].parse().unwrap();
        let after: f64 = rows[1][1].parse().unwrap();
        assert!(after < before / 2.0, "{after} !< {before}/2");
        // Frequency-domain shift2 row should be the small one.
        let s2: f64 = rows[4][1].parse().unwrap();
        let s0: f64 = rows[2][1].parse().unwrap();
        assert!(s2 < s0);
    }

    #[test]
    fn fig3_envelope_rows() {
        let tables = fig3();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 40);
        assert_eq!(tables[1].rows.len(), 6);
        // Fig. 4 worked example: after-lo of |F2| = 5.95.
        assert_eq!(tables[2].rows[0][3], "5.95");
    }
}
