//! Fixed-size-record heap files.
//!
//! Full sequence records (the 128 closing prices plus metadata) live in a
//! heap file; Algorithm 1's post-processing step ("retrieve its full
//! database record") reads from here, and those reads are part of the
//! measured disk traffic.

use crate::buffer::BufferPool;
use crate::error::PageError;
use crate::page::{PageId, PAGE_SIZE};
use crate::sync::Mutex;
use std::marker::PhantomData;
use std::sync::Arc;

/// A fixed-size record that can be (de)serialised into page bytes.
pub trait Record: Sized {
    /// Serialised size in bytes; must be `≤ PAGE_SIZE − 8`.
    const SIZE: usize;

    /// Writes the record into `buf` (`buf.len() == SIZE`).
    fn write_to(&self, buf: &mut [u8]);

    /// Reads a record from `buf` (`buf.len() == SIZE`).
    fn read_from(buf: &[u8]) -> Self;
}

/// Address of a record: page plus slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RecordId {
    /// The page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

// Page layout: [count: u16][pad: 6][records...]
const HEADER: usize = 8;

/// An append-only heap file of fixed-size records.
pub struct HeapFile<R: Record> {
    pool: Arc<BufferPool>,
    state: Mutex<HeapState>,
    _marker: PhantomData<fn() -> R>,
}

struct HeapState {
    pages: Vec<PageId>,
    len: usize,
}

impl<R: Record> HeapFile<R> {
    /// Records that fit on one page.
    pub const PER_PAGE: usize = (PAGE_SIZE - HEADER) / R::SIZE;

    /// Creates an empty heap file on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        assert!(R::SIZE <= PAGE_SIZE - HEADER, "record too large for a page");
        assert!(R::SIZE > 0, "zero-size records are not addressable");
        Self {
            pool,
            state: Mutex::new(HeapState {
                pages: Vec::new(),
                len: 0,
            }),
            _marker: PhantomData,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.state.lock().len
    }

    /// True when no records were inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages the file occupies.
    pub fn page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Appends a record, returning its address.
    pub fn insert(&self, rec: &R) -> Result<RecordId, PageError> {
        let mut st = self.state.lock();
        let slot_in_page = st.len % Self::PER_PAGE;
        if slot_in_page == 0 {
            let pid = self.pool.alloc();
            st.pages.push(pid);
        }
        let pid = *st.pages.last().expect("page just ensured");
        let slot = u16::try_from(slot_in_page).expect("slot fits u16");
        st.len += 1;
        drop(st);

        self.pool.with_page_mut(pid, |p| {
            let off = HEADER + slot as usize * R::SIZE;
            rec.write_to(&mut p.bytes_mut()[off..off + R::SIZE]);
            let count = p.get_u16(0);
            p.put_u16(0, count.max(slot + 1));
        })?;
        Ok(RecordId { page: pid, slot })
    }

    /// Fetches the record at `rid`.
    ///
    /// # Panics
    ///
    /// Panics when the slot is past the page's record count — a bad
    /// `RecordId` is a caller bug, unlike a failed page access.
    pub fn get(&self, rid: RecordId) -> Result<R, PageError> {
        self.pool.with_page(rid.page, |p| {
            let count = p.get_u16(0);
            assert!(
                rid.slot < count,
                "slot {} out of bounds (count {count})",
                rid.slot
            );
            let off = HEADER + rid.slot as usize * R::SIZE;
            R::read_from(p.get_bytes(off, R::SIZE))
        })
    }

    /// Overwrites the record at `rid`.
    pub fn update(&self, rid: RecordId, rec: &R) -> Result<(), PageError> {
        self.pool.with_page_mut(rid.page, |p| {
            let count = p.get_u16(0);
            assert!(
                rid.slot < count,
                "slot {} out of bounds (count {count})",
                rid.slot
            );
            let off = HEADER + rid.slot as usize * R::SIZE;
            rec.write_to(&mut p.bytes_mut()[off..off + R::SIZE]);
        })
    }

    /// The address a record would get from sequential insertion order —
    /// valid because the file is append-only.
    pub fn rid_of(&self, ordinal: usize) -> RecordId {
        let st = self.state.lock();
        assert!(
            ordinal < st.len,
            "ordinal {ordinal} out of bounds (len {})",
            st.len
        );
        RecordId {
            page: st.pages[ordinal / Self::PER_PAGE],
            slot: (ordinal % Self::PER_PAGE) as u16,
        }
    }

    /// Visits every record in insertion order. One page access per page,
    /// not per record — this is what makes sequential scan's access count
    /// `⌈N / PER_PAGE⌉` like a real scan. Stops at the first failed page.
    pub fn scan(&self, mut f: impl FnMut(RecordId, R)) -> Result<(), PageError> {
        let pages = self.state.lock().pages.clone();
        for pid in pages {
            self.pool.with_page(pid, |p| {
                let count = p.get_u16(0);
                for slot in 0..count {
                    let off = HEADER + slot as usize * R::SIZE;
                    f(
                        RecordId { page: pid, slot },
                        R::read_from(p.get_bytes(off, R::SIZE)),
                    );
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    /// A toy record: id plus 16 floats.
    #[derive(Clone, Debug, PartialEq)]
    struct Rec {
        id: u64,
        vals: [f64; 16],
    }

    impl Record for Rec {
        const SIZE: usize = 8 + 16 * 8;

        fn write_to(&self, buf: &mut [u8]) {
            buf[0..8].copy_from_slice(&self.id.to_le_bytes());
            for (i, v) in self.vals.iter().enumerate() {
                buf[8 + i * 8..16 + i * 8].copy_from_slice(&v.to_bits().to_le_bytes());
            }
        }

        fn read_from(buf: &[u8]) -> Self {
            let id = u64::from_le_bytes(buf[0..8].try_into().unwrap());
            let mut vals = [0.0; 16];
            for (i, v) in vals.iter_mut().enumerate() {
                *v = f64::from_bits(u64::from_le_bytes(
                    buf[8 + i * 8..16 + i * 8].try_into().unwrap(),
                ));
            }
            Self { id, vals }
        }
    }

    fn rec(id: u64) -> Rec {
        let mut vals = [0.0; 16];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = id as f64 * 100.0 + i as f64;
        }
        Rec { id, vals }
    }

    fn heap() -> (Arc<Disk>, HeapFile<Rec>) {
        let disk = Arc::new(Disk::new());
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 16));
        (disk, HeapFile::create(pool))
    }

    #[test]
    fn insert_get_roundtrip() {
        let (_d, h) = heap();
        let rids: Vec<RecordId> = (0..200).map(|i| h.insert(&rec(i)).unwrap()).collect();
        assert_eq!(h.len(), 200);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), rec(i as u64));
        }
    }

    #[test]
    fn records_span_pages() {
        let (_d, h) = heap();
        let per = HeapFile::<Rec>::PER_PAGE;
        for i in 0..(per * 3 + 1) {
            h.insert(&rec(i as u64)).unwrap();
        }
        assert_eq!(h.page_count(), 4);
    }

    #[test]
    fn rid_of_matches_insert_order() {
        let (_d, h) = heap();
        let rids: Vec<RecordId> = (0..150).map(|i| h.insert(&rec(i)).unwrap()).collect();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.rid_of(i), *rid);
        }
    }

    #[test]
    fn scan_visits_all_in_order() {
        let (_d, h) = heap();
        for i in 0..100 {
            h.insert(&rec(i)).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_rid, r| seen.push(r.id)).unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scan_costs_one_access_per_page() {
        let (disk, h) = heap();
        let per = HeapFile::<Rec>::PER_PAGE;
        for i in 0..(per * 5) as u64 {
            h.insert(&rec(i)).unwrap();
        }
        disk.reset_stats();
        // Note: heap's pool may still cache pages, so assert the bound:
        h.scan(|_, _| {}).unwrap();
        assert!(disk.stats().reads <= 5);
    }

    #[test]
    fn update_overwrites() {
        let (_d, h) = heap();
        let rid = h.insert(&rec(1)).unwrap();
        h.update(rid, &rec(9)).unwrap();
        assert_eq!(h.get(rid).unwrap().id, 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_invalid_slot_panics() {
        let (_d, h) = heap();
        let rid = h.insert(&rec(1)).unwrap();
        let bad = RecordId {
            page: rid.page,
            slot: 99,
        };
        let _ = h.get(bad);
    }
}
