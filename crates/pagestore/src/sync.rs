//! Thin parking_lot-style wrappers over `std::sync` locks.
//!
//! The workspace builds with zero external crates, so the buffer pool and
//! node stores lock through these wrappers instead of `parking_lot`. The
//! API difference they paper over: std locks return poison `Result`s. A
//! poisoned lock here means a panic mid-update inside this crate; the
//! structures are left internally consistent (all updates happen before
//! possible panics or are single assignments), so we recover the guard —
//! matching parking_lot's no-poisoning semantics that the original code
//! was written against.

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }
}
