#![warn(missing_docs)]
//! # pagestore — paged storage substrate
//!
//! The ICDE '99 paper's cost unit is the **disk access** (Eq. 18–20 and the
//! access counts of Figures 8–9), so the reproduction needs storage whose
//! page I/O is observable. This crate provides:
//!
//! * [`Page`] / [`PageId`] — fixed 8 KiB pages with little-endian codec
//!   helpers;
//! * [`Disk`] — an in-memory simulated disk with atomic read/write counters
//!   and a free list (the "device" under both the R*-tree and the sequence
//!   relation);
//! * [`BufferPool`] — a latch-protected LRU pool with pin counts; its *miss*
//!   counter is the number of physical accesses the experiments report;
//! * [`HeapFile`] — a fixed-size-record heap file used to store full
//!   sequence records (retrieved in the post-processing step 5 of
//!   Algorithm 1);
//! * [`FaultyDisk`] / [`FaultPlan`] — deterministic, seeded fault
//!   injection over the [`PageDevice`] trait, with typed [`PageError`]s
//!   that every layer above propagates instead of panicking.
//!
//! All structures are thread-safe ([`sync`] wrappers over `std::sync`
//! locks) so parallel scans and the query server can share them.

mod buffer;
mod disk;
mod dynheap;
mod error;
mod fault;
mod filedisk;
mod heap;
mod page;
mod stats;
pub mod sync;

pub use buffer::{BufferPool, BufferStats, TRANSIENT_RETRIES};
pub use disk::{Disk, DiskStats, PageDevice};
pub use dynheap::DynHeapFile;
pub use error::{PageError, PageErrorKind, PageOp};
pub use fault::{FaultCounters, FaultKind, FaultPlan, FaultSpec, FaultyDisk, PlanParams, Trigger};
pub use heap::{HeapFile, Record, RecordId};
pub use page::{Page, PageId, PAGE_SIZE};
pub use stats::AccessStats;
