//! Combined access-statistics snapshot used in experiment reports.

use crate::{BufferStats, DiskStats};
use std::fmt;
use std::ops::Sub;

/// One snapshot of all storage counters; subtract two snapshots to get the
/// traffic of the interval between them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Physical page reads.
    pub disk_reads: u64,
    /// Physical page writes.
    pub disk_writes: u64,
    /// Buffer pool hits.
    pub pool_hits: u64,
    /// Buffer pool misses.
    pub pool_misses: u64,
}

impl AccessStats {
    /// Combines device and pool counters.
    pub fn capture(disk: &DiskStats, pool: &BufferStats) -> Self {
        Self {
            disk_reads: disk.reads,
            disk_writes: disk.writes,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
        }
    }

    /// Total physical accesses (the paper's cost unit).
    pub fn disk_accesses(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }
}

impl Sub for AccessStats {
    type Output = AccessStats;

    fn sub(self, rhs: Self) -> Self {
        Self {
            disk_reads: self.disk_reads.saturating_sub(rhs.disk_reads),
            disk_writes: self.disk_writes.saturating_sub(rhs.disk_writes),
            pool_hits: self.pool_hits.saturating_sub(rhs.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(rhs.pool_misses),
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} pool_hits={} pool_misses={}",
            self.disk_reads, self.disk_writes, self.pool_hits, self.pool_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_diff() {
        let before = AccessStats {
            disk_reads: 10,
            disk_writes: 2,
            pool_hits: 5,
            pool_misses: 10,
        };
        let after = AccessStats {
            disk_reads: 25,
            disk_writes: 2,
            pool_hits: 9,
            pool_misses: 25,
        };
        let delta = after - before;
        assert_eq!(delta.disk_reads, 15);
        assert_eq!(delta.disk_accesses(), 15);
        assert_eq!(delta.pool_hits, 4);
    }

    #[test]
    fn display_is_compact() {
        let s = AccessStats {
            disk_reads: 1,
            disk_writes: 2,
            pool_hits: 3,
            pool_misses: 4,
        };
        assert_eq!(s.to_string(), "reads=1 writes=2 pool_hits=3 pool_misses=4");
    }
}
