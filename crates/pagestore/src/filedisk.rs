//! Durable page files: the in-memory [`Disk`]'s contents saved to and
//! restored from an on-disk image, so indexes survive process restarts.
//!
//! Format (little-endian):
//!
//! ```text
//! [magic "SIMSEQPG"][version: u32][page_count: u32][free_count: u32]
//! [free list: free_count × u32]
//! [allocation bitmap: ⌈page_count/8⌉ bytes]
//! [pages: page_count × PAGE_SIZE, freed pages written as zeroes]
//! ```
//!
//! The image is written atomically (temp file + rename).

use crate::disk::Disk;
use crate::page::{Page, PageId};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SIMSEQPG";
const VERSION: u32 = 1;

impl Disk {
    /// Writes the whole device image to `path` (atomic replace).
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let snapshot = self.snapshot();
        let tmp = path.with_extension("tmp");
        {
            let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
            out.write_all(MAGIC)?;
            out.write_all(&VERSION.to_le_bytes())?;
            out.write_all(&(snapshot.pages.len() as u32).to_le_bytes())?;
            out.write_all(&(snapshot.free.len() as u32).to_le_bytes())?;
            for pid in &snapshot.free {
                out.write_all(&pid.0.to_le_bytes())?;
            }
            let mut bitmap = vec![0u8; snapshot.pages.len().div_ceil(8)];
            for (i, page) in snapshot.pages.iter().enumerate() {
                if page.is_some() {
                    bitmap[i / 8] |= 1 << (i % 8);
                }
            }
            out.write_all(&bitmap)?;
            let zero = Page::zeroed();
            for page in &snapshot.pages {
                out.write_all(page.as_ref().unwrap_or(&zero).bytes())?;
            }
            out.flush()?;
            // Reach stable storage before the rename publishes the file:
            // the checkpoint protocol treats a renamed image as durable.
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if let Ok(d) = std::fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Restores a device image previously written by [`Self::save_to`].
    /// Access counters start at zero.
    pub fn load_from(path: &Path) -> io::Result<Self> {
        let mut input = io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data("not a simseq page file"));
        }
        let version = read_u32(&mut input)?;
        if version != VERSION {
            return Err(bad_data(format!("unsupported version {version}")));
        }
        let page_count = read_u32(&mut input)? as usize;
        let free_count = read_u32(&mut input)? as usize;
        if free_count > page_count {
            return Err(bad_data("free list longer than page table"));
        }
        let mut free = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            let pid = PageId(read_u32(&mut input)?);
            if pid.0 as usize >= page_count {
                return Err(bad_data("free-list entry out of range"));
            }
            free.push(pid);
        }
        let mut bitmap = vec![0u8; page_count.div_ceil(8)];
        input.read_exact(&mut bitmap)?;

        let mut pages: Vec<Option<Page>> = Vec::with_capacity(page_count);
        for i in 0..page_count {
            let mut page = Page::zeroed();
            input.read_exact(page.bytes_mut())?;
            let allocated = bitmap[i / 8] & (1 << (i % 8)) != 0;
            pages.push(allocated.then_some(page));
        }
        // Cross-check: freed pages must be exactly the unallocated ones.
        let freed: std::collections::HashSet<u32> = free.iter().map(|p| p.0).collect();
        for (i, page) in pages.iter().enumerate() {
            if page.is_none() != freed.contains(&(i as u32)) {
                return Err(bad_data(format!("bitmap/free-list disagree on page {i}")));
            }
        }
        Ok(Self::from_snapshot(pages, free))
    }
}

fn read_u32(input: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pagestore_filedisk_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_roundtrip() {
        let disk = Disk::new();
        let a = disk.alloc();
        let b = disk.alloc();
        let c = disk.alloc();
        let mut p = Page::zeroed();
        p.put_u64(0, 0xDEAD_BEEF_CAFE);
        p.put_f64(8, -1.5e300);
        disk.write(a, &p);
        p.put_u64(0, 42);
        disk.write(c, &p);
        disk.free(b);

        let path = tmp("roundtrip.pg");
        disk.save_to(&path).unwrap();
        let back = Disk::load_from(&path).unwrap();

        assert_eq!(back.read(a).get_u64(0), 0xDEAD_BEEF_CAFE);
        assert_eq!(back.read(a).get_f64(8), -1.5e300);
        assert_eq!(back.read(c).get_u64(0), 42);
        // The freed slot is reusable and comes back zeroed.
        let reused = back.alloc();
        assert_eq!(reused, b);
        assert_eq!(back.read(reused).get_u64(0), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counters_start_fresh_after_load() {
        let disk = Disk::new();
        let a = disk.alloc();
        disk.read(a);
        let path = tmp("counters.pg");
        disk.save_to(&path).unwrap();
        let back = Disk::load_from(&path).unwrap();
        assert_eq!(back.stats().reads, 0);
        assert_eq!(back.stats().allocated, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.pg");
        std::fs::write(&path, b"definitely not a page file").unwrap();
        assert!(Disk::load_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_disk_roundtrips() {
        let disk = Disk::new();
        let path = tmp("empty.pg");
        disk.save_to(&path).unwrap();
        let back = Disk::load_from(&path).unwrap();
        assert_eq!(back.stats().allocated, 0);
        let first = back.alloc();
        assert_eq!(first, PageId(0));
        std::fs::remove_file(&path).ok();
    }
}
