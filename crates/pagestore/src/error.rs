//! Typed page-access errors.
//!
//! Every fallible page operation in the workspace reports a [`PageError`]:
//! which page, which operation, what went wrong, and whether a retry can be
//! expected to succeed. The error is `Copy` so it threads cheaply through
//! the R*-tree recursion and the query engines.

use crate::page::PageId;
use std::fmt;

/// The operation that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
}

impl fmt::Display for PageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageOp::Read => write!(f, "read"),
            PageOp::Write => write!(f, "write"),
        }
    }
}

/// What went wrong with a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageErrorKind {
    /// The device reported an I/O failure.
    Io,
    /// The page's contents failed validation — e.g. a torn write was
    /// detected on the subsequent read (the device model checksums pages,
    /// so corruption surfaces as a typed error, never as garbage data).
    Corrupt,
}

impl fmt::Display for PageErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageErrorKind::Io => write!(f, "i/o error"),
            PageErrorKind::Corrupt => write!(f, "corrupt page"),
        }
    }
}

/// A failed page access: the page, the operation, the failure kind, and
/// whether the fault is transient (a bounded retry may succeed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageError {
    /// The page being accessed.
    pub pid: PageId,
    /// The operation that failed.
    pub op: PageOp,
    /// The failure kind.
    pub kind: PageErrorKind,
    /// Transient faults may succeed when retried; persistent ones won't.
    pub transient: bool,
}

impl PageError {
    /// A persistent read I/O error on `pid`.
    pub fn read_io(pid: PageId) -> Self {
        Self {
            pid,
            op: PageOp::Read,
            kind: PageErrorKind::Io,
            transient: false,
        }
    }

    /// A persistent write I/O error on `pid`.
    pub fn write_io(pid: PageId) -> Self {
        Self {
            pid,
            op: PageOp::Write,
            kind: PageErrorKind::Io,
            transient: false,
        }
    }

    /// A corruption error detected while reading `pid` (torn write).
    pub fn corrupt(pid: PageId) -> Self {
        Self {
            pid,
            op: PageOp::Read,
            kind: PageErrorKind::Corrupt,
            transient: false,
        }
    }

    /// Marks the error transient.
    pub fn transient(mut self) -> Self {
        self.transient = true;
        self
    }
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} failed: {}{}",
            self.op,
            self.pid,
            self.kind,
            if self.transient { " (transient)" } else { "" }
        )
    }
}

impl std::error::Error for PageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_page_op_and_kind() {
        let e = PageError::read_io(PageId(7));
        assert_eq!(e.to_string(), "read of P7 failed: i/o error");
        let e = PageError::write_io(PageId(3)).transient();
        assert_eq!(e.to_string(), "write of P3 failed: i/o error (transient)");
        let e = PageError::corrupt(PageId(0));
        assert_eq!(e.to_string(), "read of P0 failed: corrupt page");
    }

    #[test]
    fn transient_flag_round_trips() {
        assert!(!PageError::read_io(PageId(1)).transient);
        assert!(PageError::read_io(PageId(1)).transient().transient);
    }
}
