//! A pin-counted LRU buffer pool over a [`PageDevice`].
//!
//! The pool's **miss** count is the experiment-visible "number of disk
//! accesses": a page served from the pool costs nothing, a miss reads the
//! device (and possibly evicts the least-recently-used unpinned frame,
//! writing it back if dirty).
//!
//! The device underneath may fail (see [`crate::FaultyDisk`]), so every
//! access returns `Result<_, PageError>`. *Transient* device errors are
//! retried here — up to [`TRANSIENT_RETRIES`] attempts with doubling
//! backoff — so a fault that recovers within the retry budget is invisible
//! to callers (except in the `transient_retries` counter). Persistent
//! errors propagate; the pool is left consistent: a failed page load frees
//! the frame, a failed writeback keeps the frame dirty and resident so no
//! update is lost.
//!
//! Concurrency design: one mutex guards the *metadata* (page table, pin
//! counts, LRU clock); page *contents* live in per-frame `RwLock`s, so
//! readers on different frames proceed in parallel and the caller's closure
//! never runs under the pool-wide lock. The invariant making this sound:
//! a frame's page lock is only ever held while the frame is pinned, and
//! eviction skips pinned frames.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based: frames are pinned for exactly the closure's duration, which
//! makes pin leaks impossible by construction.

use crate::disk::PageDevice;
use crate::error::PageError;
use crate::page::{Page, PageId};
use crate::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Max retry attempts for a transient device error (per access).
pub const TRANSIENT_RETRIES: u32 = 4;
/// Initial retry backoff; doubles per attempt (10 → 20 → 40 → 80 µs).
const BACKOFF_START_US: u64 = 10;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups served from the pool.
    pub hits: u64,
    /// Lookups that had to read the device.
    pub misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
    /// Device accesses retried after a transient fault.
    pub transient_retries: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when there was no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy)]
struct FrameMeta {
    pid: PageId,
    dirty: bool,
    pins: u32,
    /// Logical clock of last use, for LRU victim selection.
    last_used: u64,
}

const EMPTY_FRAME: FrameMeta = FrameMeta {
    pid: PageId::INVALID,
    dirty: false,
    pins: 0,
    last_used: 0,
};

struct PoolMeta {
    frames: Vec<FrameMeta>,
    map: HashMap<PageId, usize>,
    clock: u64,
    stats: BufferStats,
}

/// A fixed-capacity LRU buffer pool.
pub struct BufferPool {
    device: Arc<dyn PageDevice>,
    meta: Mutex<PoolMeta>,
    /// Page contents; the vector never grows, so `&pages[idx]` is stable.
    pages: Vec<RwLock<Page>>,
    transient_retries: AtomicU64,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `device` (a plain
    /// [`crate::Disk`], a [`crate::FaultyDisk`], or any other device).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new<D: PageDevice + 'static>(device: Arc<D>, capacity: usize) -> Self {
        Self::new_dyn(device, capacity)
    }

    /// Like [`Self::new`] for an already type-erased device handle.
    pub fn new_dyn(device: Arc<dyn PageDevice>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let pages = (0..capacity).map(|_| RwLock::new(Page::zeroed())).collect();
        Self {
            device,
            meta: Mutex::new(PoolMeta {
                frames: (0..capacity).map(|_| EMPTY_FRAME).collect(),
                map: HashMap::new(),
                clock: 0,
                stats: BufferStats::default(),
            }),
            pages,
            transient_retries: AtomicU64::new(0),
        }
    }

    /// The device underneath.
    pub fn device(&self) -> &Arc<dyn PageDevice> {
        &self.device
    }

    /// Allocates a fresh page on the device (not yet cached).
    pub fn alloc(&self) -> PageId {
        self.device.alloc()
    }

    /// Runs `f` over the page, fetching it on a miss. The frame stays pinned
    /// only while `f` runs; concurrent readers of different pages (and of
    /// the same page) proceed in parallel.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R, PageError> {
        let idx = self.pin(pid)?;
        let result = {
            let page = self.pages[idx].read();
            f(&page)
        };
        self.unpin(idx, false);
        Ok(result)
    }

    /// Like [`Self::with_page`] but mutable; marks the frame dirty.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, PageError> {
        let idx = self.pin(pid)?;
        let result = {
            let mut page = self.pages[idx].write();
            f(&mut page)
        };
        self.unpin(idx, true);
        Ok(result)
    }

    /// Drops the page from the pool (discarding any cached dirty copy —
    /// the page is being destroyed) and frees it on the device.
    ///
    /// # Panics
    ///
    /// Panics if the page is currently pinned.
    pub fn free(&self, pid: PageId) {
        let mut meta = self.meta.lock();
        if let Some(idx) = meta.map.remove(&pid) {
            assert_eq!(meta.frames[idx].pins, 0, "freeing pinned {pid}");
            meta.frames[idx] = EMPTY_FRAME;
        }
        drop(meta);
        self.device.free(pid);
    }

    /// Writes every dirty frame back to the device. On writeback failure
    /// the frame stays dirty (no update is lost); the first error is
    /// returned after every dirty frame has been attempted.
    pub fn flush_all(&self) -> Result<(), PageError> {
        // Pin every dirty frame under the metadata lock, then write back
        // without it (a dirty frame may be page-write-locked by an active
        // user; pinning first keeps it resident while we wait our turn).
        let mut pinned: Vec<(usize, PageId)> = Vec::new();
        {
            let mut meta = self.meta.lock();
            meta.clock += 1;
            let now = meta.clock;
            for (idx, frame) in meta.frames.iter_mut().enumerate() {
                if frame.pid.is_valid() && frame.dirty {
                    frame.dirty = false;
                    frame.pins += 1;
                    frame.last_used = now;
                    pinned.push((idx, frame.pid));
                }
            }
        }
        let mut first_err = None;
        let mut failed = vec![false; pinned.len()];
        for (k, &(idx, pid)) in pinned.iter().enumerate() {
            let res = {
                let page = self.pages[idx].read();
                self.write_retry(pid, &page)
            };
            if let Err(e) = res {
                failed[k] = true;
                first_err.get_or_insert(e);
            }
        }
        let mut meta = self.meta.lock();
        for (k, &(idx, _)) in pinned.iter().enumerate() {
            let frame = &mut meta.frames[idx];
            debug_assert!(frame.pins > 0);
            frame.pins -= 1;
            if failed[k] {
                frame.dirty = true;
            } else {
                meta.stats.writebacks += 1;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flushes and empties the pool; the next access of any page is a miss.
    /// Experiments use this to measure queries cold, like the paper's
    /// per-query access counts. Fails (without emptying) when a dirty
    /// frame cannot be written back.
    pub fn clear(&self) -> Result<(), PageError> {
        self.flush_all()?;
        let mut meta = self.meta.lock();
        assert!(
            meta.frames.iter().all(|fr| fr.pins == 0),
            "clear() while frames are pinned"
        );
        meta.map.clear();
        for frame in meta.frames.iter_mut() {
            *frame = EMPTY_FRAME;
        }
        Ok(())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        let mut s = self.meta.lock().stats;
        s.transient_retries = self.transient_retries.load(Ordering::Relaxed);
        s
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.meta.lock().stats = BufferStats::default();
        self.transient_retries.store(0, Ordering::Relaxed);
    }

    /// Reads `pid` from the device, retrying transient faults with bounded
    /// doubling backoff.
    fn read_retry(&self, pid: PageId) -> Result<Page, PageError> {
        let mut delay = BACKOFF_START_US;
        let mut attempts = 0;
        loop {
            match self.device.read(pid) {
                Ok(p) => return Ok(p),
                Err(e) if e.transient && attempts < TRANSIENT_RETRIES => {
                    attempts += 1;
                    self.transient_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(delay));
                    delay *= 2;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes `pid` to the device, retrying transient faults with bounded
    /// doubling backoff.
    fn write_retry(&self, pid: PageId, page: &Page) -> Result<(), PageError> {
        let mut delay = BACKOFF_START_US;
        let mut attempts = 0;
        loop {
            match self.device.write(pid, page) {
                Ok(()) => return Ok(()),
                Err(e) if e.transient && attempts < TRANSIENT_RETRIES => {
                    attempts += 1;
                    self.transient_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(delay));
                    delay *= 2;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn pin(&self, pid: PageId) -> Result<usize, PageError> {
        let mut meta = self.meta.lock();
        meta.clock += 1;
        let now = meta.clock;
        if let Some(&idx) = meta.map.get(&pid) {
            meta.stats.hits += 1;
            let frame = &mut meta.frames[idx];
            frame.pins += 1;
            frame.last_used = now;
            return Ok(idx);
        }
        meta.stats.misses += 1;

        // Candidate victims: unpinned frames, empties first, then LRU. A
        // dirty victim whose writeback fails is skipped (it stays dirty
        // and resident — no update lost) and the next candidate is tried.
        let mut candidates: Vec<usize> = (0..meta.frames.len())
            .filter(|&i| meta.frames[i].pins == 0)
            .collect();
        candidates.sort_by_key(|&i| (meta.frames[i].pid.is_valid(), meta.frames[i].last_used));
        assert!(
            !candidates.is_empty(),
            "buffer pool exhausted: every frame is pinned"
        );
        let mut chosen = None;
        let mut last_err = None;
        for idx in candidates {
            let old = meta.frames[idx];
            if old.pid.is_valid() && old.dirty {
                // Unpinned frame ⇒ no one holds its page lock; this cannot
                // block. Holding the metadata lock keeps eviction atomic.
                let res = {
                    let page = self.pages[idx].read();
                    self.write_retry(old.pid, &page)
                };
                match res {
                    Ok(()) => {
                        meta.stats.writebacks += 1;
                        meta.map.remove(&old.pid);
                        chosen = Some(idx);
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            if old.pid.is_valid() {
                meta.map.remove(&old.pid);
            }
            chosen = Some(idx);
            break;
        }
        let Some(idx) = chosen else {
            return Err(last_err.expect("no victim chosen without a writeback error"));
        };

        // Mark the frame pinned *before* loading so no concurrent pin()
        // can evict it while we fill the page contents.
        meta.frames[idx] = FrameMeta {
            pid,
            dirty: false,
            pins: 1,
            last_used: now,
        };
        meta.map.insert(pid, idx);
        // Load the contents while still under the metadata lock: a
        // concurrent pin() of the same pid must not read stale bytes. The
        // in-memory device makes this cheap.
        match self.read_retry(pid) {
            Ok(fresh) => {
                *self.pages[idx].write() = fresh;
                Ok(idx)
            }
            Err(e) => {
                // Undo: release the frame so the pool stays consistent.
                meta.map.remove(&pid);
                meta.frames[idx] = EMPTY_FRAME;
                Err(e)
            }
        }
    }

    fn unpin(&self, idx: usize, dirty: bool) {
        let mut meta = self.meta.lock();
        let frame = &mut meta.frames[idx];
        debug_assert!(frame.pins > 0);
        frame.pins -= 1;
        frame.dirty |= dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::fault::{FaultPlan, FaultyDisk};

    fn setup(cap: usize, pages: usize) -> (Arc<Disk>, BufferPool, Vec<PageId>) {
        let disk = Arc::new(Disk::new());
        let ids: Vec<PageId> = (0..pages)
            .map(|i| {
                let pid = disk.alloc();
                let mut p = Page::zeroed();
                p.put_u64(0, i as u64);
                disk.write(pid, &p);
                pid
            })
            .collect();
        disk.reset_stats();
        let pool = BufferPool::new(Arc::clone(&disk), cap);
        (disk, pool, ids)
    }

    #[test]
    fn hits_after_first_miss() {
        let (_disk, pool, ids) = setup(4, 2);
        assert_eq!(pool.with_page(ids[1], |p| p.get_u64(0)).unwrap(), 1);
        assert_eq!(pool.with_page(ids[1], |p| p.get_u64(0)).unwrap(), 1);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let (disk, pool, ids) = setup(2, 3);
        pool.with_page(ids[0], |_| ()).unwrap();
        pool.with_page(ids[1], |_| ()).unwrap();
        pool.with_page(ids[2], |_| ()).unwrap(); // evicts ids[0]
        disk.reset_stats();
        pool.with_page(ids[1], |_| ()).unwrap(); // hit
        assert_eq!(disk.stats().reads, 0);
        pool.with_page(ids[0], |_| ()).unwrap(); // miss again
        assert_eq!(disk.stats().reads, 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (disk, pool, ids) = setup(1, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 777)).unwrap();
        pool.with_page(ids[1], |_| ()).unwrap(); // forces eviction + writeback
        assert_eq!(disk.read(ids[0]).get_u64(0), 777);
        assert_eq!(pool.stats().writebacks, 1);
    }

    #[test]
    fn flush_and_clear_round_trip() {
        let (disk, pool, ids) = setup(4, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(8, 5)).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(disk.read(ids[0]).get_u64(8), 5);
        disk.reset_stats();
        pool.clear().unwrap();
        pool.with_page(ids[0], |_| ()).unwrap();
        assert_eq!(disk.stats().reads, 1, "post-clear access must be a miss");
    }

    #[test]
    fn flush_is_idempotent() {
        let (disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 9)).unwrap();
        pool.flush_all().unwrap();
        pool.flush_all().unwrap(); // nothing dirty left
        assert_eq!(pool.stats().writebacks, 1);
        assert_eq!(disk.read(ids[0]).get_u64(0), 9);
    }

    #[test]
    fn miss_count_equals_device_reads() {
        let (disk, pool, ids) = setup(2, 5);
        for _round in 0..3 {
            for &pid in &ids {
                pool.with_page(pid, |p| p.get_u64(0)).unwrap();
            }
        }
        assert_eq!(pool.stats().misses, disk.stats().reads);
    }

    #[test]
    fn free_removes_from_pool_and_device() {
        let (disk, pool, ids) = setup(4, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 1)).unwrap();
        pool.free(ids[0]);
        let replacement = disk.alloc();
        assert_eq!(replacement, ids[0], "device should recycle the freed id");
    }

    #[test]
    fn hit_ratio_reporting() {
        let (_d, pool, ids) = setup(4, 1);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.with_page(ids[0], |_| ()).unwrap();
        pool.with_page(ids[0], |_| ()).unwrap();
        assert!((pool.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let (_d, pool, ids) = setup(8, 4);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let mut acc = 0u64;
                for i in 0..200 {
                    let pid = ids[(t + i) % ids.len()];
                    acc += pool.with_page(pid, |p| p.get_u64(0)).unwrap();
                }
                acc
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All four pages fit: after warmup everything is a hit.
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 800 - 4);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let (disk, pool, ids) = setup(4, 2);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let pid = ids[(t % 2) as usize];
                    pool.with_page_mut(pid, |p| {
                        let v = p.get_u64(8);
                        p.put_u64(8, v + 1);
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.flush_all().unwrap();
        let total = disk.read(ids[0]).get_u64(8) + disk.read(ids[1]).get_u64(8);
        assert_eq!(total, 2000, "every increment must survive");
    }

    #[test]
    fn readers_of_different_pages_overlap() {
        // Two threads each hold a long read of a different page; if the
        // closure ran under a pool-wide lock this would take ≥ 2×50 ms.
        let (_d, pool, ids) = setup(4, 2);
        let pool = Arc::new(pool);
        let start = std::time::Instant::now();
        let mut handles = Vec::new();
        for t in 0..2 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                pool.with_page(ids[t], |_| {
                    std::thread::sleep(std::time::Duration::from_millis(50))
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(90),
            "closures must not serialise: {:?}",
            start.elapsed()
        );
    }

    fn faulty_setup(cap: usize, pages: usize) -> (Arc<FaultyDisk>, BufferPool, Vec<PageId>) {
        let disk = Arc::new(Disk::new());
        let ids: Vec<PageId> = (0..pages)
            .map(|i| {
                let pid = disk.alloc();
                let mut p = Page::zeroed();
                p.put_u64(0, i as u64);
                disk.write(pid, &p);
                pid
            })
            .collect();
        let faulty = Arc::new(FaultyDisk::new(disk));
        let pool = BufferPool::new(Arc::clone(&faulty), cap);
        (faulty, pool, ids)
    }

    #[test]
    fn transient_read_fault_is_retried_away() {
        let (faulty, pool, ids) = faulty_setup(2, 1);
        faulty.arm(FaultPlan::new().transient_at(1, 2));
        // The miss hits a transient fault twice; bounded retry absorbs it.
        assert_eq!(pool.with_page(ids[0], |p| p.get_u64(0)).unwrap(), 0);
        assert_eq!(pool.stats().transient_retries, 2);
        assert_eq!(faulty.injected().transient_errors, 2);
    }

    #[test]
    fn persistent_read_fault_propagates_and_pool_recovers() {
        let (faulty, pool, ids) = faulty_setup(2, 2);
        faulty.arm(FaultPlan::new().read_error_at(1));
        let err = pool.with_page(ids[0], |p| p.get_u64(0)).unwrap_err();
        assert_eq!(err, PageError::read_io(ids[0]));
        // The failed load released its frame; the next access succeeds.
        assert_eq!(pool.with_page(ids[0], |p| p.get_u64(0)).unwrap(), 0);
        assert_eq!(pool.with_page(ids[1], |p| p.get_u64(0)).unwrap(), 1);
    }

    #[test]
    fn failed_writeback_keeps_update_and_skips_victim() {
        let (faulty, pool, ids) = faulty_setup(2, 3);
        // Warm two frames, dirty the first.
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 111)).unwrap();
        pool.with_page(ids[1], |_| ()).unwrap();
        // First write attempt fails persistently: eviction must skip the
        // dirty frame (keeping the update) and evict the clean one.
        faulty.arm(FaultPlan::new().write_error_at(1));
        pool.with_page(ids[2], |_| ()).unwrap();
        faulty.disarm();
        // The update must still be visible through the pool and must reach
        // the device on flush.
        assert_eq!(pool.with_page(ids[0], |p| p.get_u64(0)).unwrap(), 111);
        pool.flush_all().unwrap();
        assert_eq!(faulty.inner().read(ids[0]).get_u64(0), 111);
    }

    #[test]
    fn failed_flush_keeps_frames_dirty_for_retry() {
        let (faulty, pool, ids) = faulty_setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 55)).unwrap();
        faulty.arm(FaultPlan::new().write_error_at(1));
        assert!(pool.flush_all().is_err());
        faulty.disarm();
        // The frame stayed dirty; a later flush lands the update.
        pool.flush_all().unwrap();
        assert_eq!(faulty.inner().read(ids[0]).get_u64(0), 55);
        assert_eq!(pool.stats().writebacks, 1, "only the success is counted");
    }
}

#[cfg(all(test, feature = "proptests"))]
mod shadow_model {
    use super::*;
    use crate::disk::Disk;
    use proptest::prelude::*;

    /// Randomized ops against a shadow map: whatever sequence of writes,
    /// reads, flushes and clears runs against the pool, reads must always
    /// see the latest written value, and after a flush the device must too.
    #[derive(Debug, Clone)]
    enum Op {
        Write { page: usize, value: u64 },
        Read { page: usize },
        Flush,
        Clear,
    }

    fn op_strategy(pages: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..pages, any::<u64>()).prop_map(|(page, value)| Op::Write { page, value }),
            (0..pages).prop_map(|page| Op::Read { page }),
            Just(Op::Flush),
            Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn pool_is_a_transparent_cache(
            cap in 1usize..6,
            ops in prop::collection::vec(op_strategy(8), 1..120),
        ) {
            let disk = Arc::new(Disk::new());
            let ids: Vec<PageId> = (0..8).map(|_| disk.alloc()).collect();
            let pool = BufferPool::new(Arc::clone(&disk), cap);
            let mut shadow = [0u64; 8];
            for op in ops {
                match op {
                    Op::Write { page, value } => {
                        pool.with_page_mut(ids[page], |p| p.put_u64(0, value)).unwrap();
                        shadow[page] = value;
                    }
                    Op::Read { page } => {
                        let got = pool.with_page(ids[page], |p| p.get_u64(0)).unwrap();
                        prop_assert_eq!(got, shadow[page], "read through the pool");
                    }
                    Op::Flush => {
                        pool.flush_all().unwrap();
                        for (i, want) in shadow.iter().enumerate() {
                            prop_assert_eq!(disk.read(ids[i]).get_u64(0), *want);
                        }
                    }
                    Op::Clear => pool.clear().unwrap(),
                }
            }
            // Final flush: the device reflects every write.
            pool.flush_all().unwrap();
            for (i, want) in shadow.iter().enumerate() {
                prop_assert_eq!(disk.read(ids[i]).get_u64(0), *want);
            }
        }
    }
}
