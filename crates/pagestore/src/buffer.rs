//! A pin-counted LRU buffer pool over a [`Disk`].
//!
//! The pool's **miss** count is the experiment-visible "number of disk
//! accesses": a page served from the pool costs nothing, a miss reads the
//! device (and possibly evicts the least-recently-used unpinned frame,
//! writing it back if dirty).
//!
//! Concurrency design: one mutex guards the *metadata* (page table, pin
//! counts, LRU clock); page *contents* live in per-frame `RwLock`s, so
//! readers on different frames proceed in parallel and the caller's closure
//! never runs under the pool-wide lock. The invariant making this sound:
//! a frame's page lock is only ever held while the frame is pinned, and
//! eviction skips pinned frames.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based: frames are pinned for exactly the closure's duration, which
//! makes pin leaks impossible by construction.

use crate::disk::Disk;
use crate::page::{Page, PageId};
use crate::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups served from the pool.
    pub hits: u64,
    /// Lookups that had to read the device.
    pub misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when there was no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy)]
struct FrameMeta {
    pid: PageId,
    dirty: bool,
    pins: u32,
    /// Logical clock of last use, for LRU victim selection.
    last_used: u64,
}

struct PoolMeta {
    frames: Vec<FrameMeta>,
    map: HashMap<PageId, usize>,
    clock: u64,
    stats: BufferStats,
}

/// A fixed-capacity LRU buffer pool.
pub struct BufferPool {
    disk: Arc<Disk>,
    meta: Mutex<PoolMeta>,
    /// Page contents; the vector never grows, so `&pages[idx]` is stable.
    pages: Vec<RwLock<Page>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(disk: Arc<Disk>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let pages = (0..capacity).map(|_| RwLock::new(Page::zeroed())).collect();
        Self {
            disk,
            meta: Mutex::new(PoolMeta {
                frames: (0..capacity)
                    .map(|_| FrameMeta {
                        pid: PageId::INVALID,
                        dirty: false,
                        pins: 0,
                        last_used: 0,
                    })
                    .collect(),
                map: HashMap::new(),
                clock: 0,
                stats: BufferStats::default(),
            }),
            pages,
        }
    }

    /// The device underneath.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Allocates a fresh page on the device (not yet cached).
    pub fn alloc(&self) -> PageId {
        self.disk.alloc()
    }

    /// Runs `f` over the page, fetching it on a miss. The frame stays pinned
    /// only while `f` runs; concurrent readers of different pages (and of
    /// the same page) proceed in parallel.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        let idx = self.pin(pid);
        let result = {
            let page = self.pages[idx].read();
            f(&page)
        };
        self.unpin(idx, false);
        result
    }

    /// Like [`Self::with_page`] but mutable; marks the frame dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        let idx = self.pin(pid);
        let result = {
            let mut page = self.pages[idx].write();
            f(&mut page)
        };
        self.unpin(idx, true);
        result
    }

    /// Drops the page from the pool (writing back if dirty) and frees it on
    /// the device.
    ///
    /// # Panics
    ///
    /// Panics if the page is currently pinned.
    pub fn free(&self, pid: PageId) {
        let mut meta = self.meta.lock();
        if let Some(idx) = meta.map.remove(&pid) {
            assert_eq!(meta.frames[idx].pins, 0, "freeing pinned {pid}");
            meta.frames[idx] = FrameMeta {
                pid: PageId::INVALID,
                dirty: false,
                pins: 0,
                last_used: 0,
            };
        }
        drop(meta);
        self.disk.free(pid);
    }

    /// Writes every dirty frame back to the device.
    pub fn flush_all(&self) {
        // Pin every dirty frame under the metadata lock, then write back
        // without it (a dirty frame may be page-write-locked by an active
        // user; pinning first keeps it resident while we wait our turn).
        let mut pinned: Vec<(usize, PageId)> = Vec::new();
        {
            let mut meta = self.meta.lock();
            meta.clock += 1;
            let now = meta.clock;
            for (idx, frame) in meta.frames.iter_mut().enumerate() {
                if frame.pid.is_valid() && frame.dirty {
                    frame.dirty = false;
                    frame.pins += 1;
                    frame.last_used = now;
                    pinned.push((idx, frame.pid));
                }
            }
            meta.stats.writebacks += pinned.len() as u64;
        }
        for &(idx, pid) in &pinned {
            let page = self.pages[idx].read();
            self.disk.write(pid, &page);
        }
        for &(idx, _) in &pinned {
            self.unpin(idx, false);
        }
    }

    /// Flushes and empties the pool; the next access of any page is a miss.
    /// Experiments use this to measure queries cold, like the paper's
    /// per-query access counts.
    pub fn clear(&self) {
        self.flush_all();
        let mut meta = self.meta.lock();
        assert!(
            meta.frames.iter().all(|fr| fr.pins == 0),
            "clear() while frames are pinned"
        );
        meta.map.clear();
        for frame in meta.frames.iter_mut() {
            *frame = FrameMeta {
                pid: PageId::INVALID,
                dirty: false,
                pins: 0,
                last_used: 0,
            };
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.meta.lock().stats
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.meta.lock().stats = BufferStats::default();
    }

    fn pin(&self, pid: PageId) -> usize {
        let mut meta = self.meta.lock();
        meta.clock += 1;
        let now = meta.clock;
        if let Some(&idx) = meta.map.get(&pid) {
            meta.stats.hits += 1;
            let frame = &mut meta.frames[idx];
            frame.pins += 1;
            frame.last_used = now;
            return idx;
        }
        meta.stats.misses += 1;

        // Choose a frame: an unused one if any, else the LRU unpinned frame.
        let idx = meta
            .frames
            .iter()
            .enumerate()
            .filter(|(_, fr)| fr.pins == 0)
            .min_by_key(|(_, fr)| (fr.pid.is_valid(), fr.last_used))
            .map(|(i, _)| i)
            .expect("buffer pool exhausted: every frame is pinned");
        let old = meta.frames[idx];
        if old.pid.is_valid() {
            meta.map.remove(&old.pid);
            if old.dirty {
                meta.stats.writebacks += 1;
                // Unpinned frame ⇒ no one holds its page lock; this cannot
                // block. Holding the metadata lock keeps eviction atomic.
                let page = self.pages[idx].read();
                self.disk.write(old.pid, &page);
            }
        }

        // Mark the frame pinned *before* releasing the metadata lock so no
        // concurrent pin() can evict it while we load the page contents.
        meta.frames[idx] = FrameMeta {
            pid,
            dirty: false,
            pins: 1,
            last_used: now,
        };
        meta.map.insert(pid, idx);
        // Load the contents while still under the metadata lock: a
        // concurrent pin() of the same pid must not read stale bytes. The
        // in-memory device makes this cheap.
        let fresh = self.disk.read(pid);
        *self.pages[idx].write() = fresh;
        idx
    }

    fn unpin(&self, idx: usize, dirty: bool) {
        let mut meta = self.meta.lock();
        let frame = &mut meta.frames[idx];
        debug_assert!(frame.pins > 0);
        frame.pins -= 1;
        frame.dirty |= dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cap: usize, pages: usize) -> (Arc<Disk>, BufferPool, Vec<PageId>) {
        let disk = Arc::new(Disk::new());
        let ids: Vec<PageId> = (0..pages)
            .map(|i| {
                let pid = disk.alloc();
                let mut p = Page::zeroed();
                p.put_u64(0, i as u64);
                disk.write(pid, &p);
                pid
            })
            .collect();
        disk.reset_stats();
        let pool = BufferPool::new(Arc::clone(&disk), cap);
        (disk, pool, ids)
    }

    #[test]
    fn hits_after_first_miss() {
        let (_disk, pool, ids) = setup(4, 2);
        assert_eq!(pool.with_page(ids[1], |p| p.get_u64(0)), 1);
        assert_eq!(pool.with_page(ids[1], |p| p.get_u64(0)), 1);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let (disk, pool, ids) = setup(2, 3);
        pool.with_page(ids[0], |_| ());
        pool.with_page(ids[1], |_| ());
        pool.with_page(ids[2], |_| ()); // evicts ids[0]
        disk.reset_stats();
        pool.with_page(ids[1], |_| ()); // hit
        assert_eq!(disk.stats().reads, 0);
        pool.with_page(ids[0], |_| ()); // miss again
        assert_eq!(disk.stats().reads, 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let (disk, pool, ids) = setup(1, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 777));
        pool.with_page(ids[1], |_| ()); // forces eviction + writeback
        assert_eq!(disk.read(ids[0]).get_u64(0), 777);
        assert_eq!(pool.stats().writebacks, 1);
    }

    #[test]
    fn flush_and_clear_round_trip() {
        let (disk, pool, ids) = setup(4, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(8, 5));
        pool.flush_all();
        assert_eq!(disk.read(ids[0]).get_u64(8), 5);
        disk.reset_stats();
        pool.clear();
        pool.with_page(ids[0], |_| ());
        assert_eq!(disk.stats().reads, 1, "post-clear access must be a miss");
    }

    #[test]
    fn flush_is_idempotent() {
        let (disk, pool, ids) = setup(4, 1);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 9));
        pool.flush_all();
        pool.flush_all(); // nothing dirty left
        assert_eq!(pool.stats().writebacks, 1);
        assert_eq!(disk.read(ids[0]).get_u64(0), 9);
    }

    #[test]
    fn miss_count_equals_device_reads() {
        let (disk, pool, ids) = setup(2, 5);
        for _round in 0..3 {
            for &pid in &ids {
                pool.with_page(pid, |p| p.get_u64(0));
            }
        }
        assert_eq!(pool.stats().misses, disk.stats().reads);
    }

    #[test]
    fn free_removes_from_pool_and_device() {
        let (disk, pool, ids) = setup(4, 2);
        pool.with_page_mut(ids[0], |p| p.put_u64(0, 1));
        pool.free(ids[0]);
        let replacement = disk.alloc();
        assert_eq!(replacement, ids[0], "device should recycle the freed id");
    }

    #[test]
    fn hit_ratio_reporting() {
        let (_d, pool, ids) = setup(4, 1);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.with_page(ids[0], |_| ());
        pool.with_page(ids[0], |_| ());
        assert!((pool.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let (_d, pool, ids) = setup(8, 4);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let mut acc = 0u64;
                for i in 0..200 {
                    let pid = ids[(t + i) % ids.len()];
                    acc += pool.with_page(pid, |p| p.get_u64(0));
                }
                acc
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All four pages fit: after warmup everything is a hit.
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 800 - 4);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let (disk, pool, ids) = setup(4, 2);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let pid = ids[(t % 2) as usize];
                    pool.with_page_mut(pid, |p| {
                        let v = p.get_u64(8);
                        p.put_u64(8, v + 1);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.flush_all();
        let total = disk.read(ids[0]).get_u64(8) + disk.read(ids[1]).get_u64(8);
        assert_eq!(total, 2000, "every increment must survive");
    }

    #[test]
    fn readers_of_different_pages_overlap() {
        // Two threads each hold a long read of a different page; if the
        // closure ran under a pool-wide lock this would take ≥ 2×50 ms.
        let (_d, pool, ids) = setup(4, 2);
        let pool = Arc::new(pool);
        let start = std::time::Instant::now();
        let mut handles = Vec::new();
        for t in 0..2 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                pool.with_page(ids[t], |_| {
                    std::thread::sleep(std::time::Duration::from_millis(50))
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_millis(90),
            "closures must not serialise: {:?}",
            start.elapsed()
        );
    }
}

#[cfg(all(test, feature = "proptests"))]
mod shadow_model {
    use super::*;
    use proptest::prelude::*;

    /// Randomized ops against a shadow map: whatever sequence of writes,
    /// reads, flushes and clears runs against the pool, reads must always
    /// see the latest written value, and after a flush the device must too.
    #[derive(Debug, Clone)]
    enum Op {
        Write { page: usize, value: u64 },
        Read { page: usize },
        Flush,
        Clear,
    }

    fn op_strategy(pages: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..pages, any::<u64>()).prop_map(|(page, value)| Op::Write { page, value }),
            (0..pages).prop_map(|page| Op::Read { page }),
            Just(Op::Flush),
            Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn pool_is_a_transparent_cache(
            cap in 1usize..6,
            ops in prop::collection::vec(op_strategy(8), 1..120),
        ) {
            let disk = Arc::new(Disk::new());
            let ids: Vec<PageId> = (0..8).map(|_| disk.alloc()).collect();
            let pool = BufferPool::new(Arc::clone(&disk), cap);
            let mut shadow = [0u64; 8];
            for op in ops {
                match op {
                    Op::Write { page, value } => {
                        pool.with_page_mut(ids[page], |p| p.put_u64(0, value));
                        shadow[page] = value;
                    }
                    Op::Read { page } => {
                        let got = pool.with_page(ids[page], |p| p.get_u64(0));
                        prop_assert_eq!(got, shadow[page], "read through the pool");
                    }
                    Op::Flush => {
                        pool.flush_all();
                        for (i, want) in shadow.iter().enumerate() {
                            prop_assert_eq!(disk.read(ids[i]).get_u64(0), *want);
                        }
                    }
                    Op::Clear => pool.clear(),
                }
            }
            // Final flush: the device reflects every write.
            pool.flush_all();
            for (i, want) in shadow.iter().enumerate() {
                prop_assert_eq!(disk.read(ids[i]).get_u64(0), *want);
            }
        }
    }
}
