//! Heap files with a record size fixed at *creation* time rather than at
//! compile time — sequence records whose length depends on the corpus.

use crate::buffer::BufferPool;
use crate::error::PageError;
use crate::page::{PageId, PAGE_SIZE};
use crate::sync::Mutex;
use std::sync::Arc;

use crate::heap::RecordId;

const HEADER: usize = 8; // [count: u16][pad: 6]

/// An append-only heap of byte records, all of one (runtime-chosen) size.
pub struct DynHeapFile {
    pool: Arc<BufferPool>,
    record_size: usize,
    per_page: usize,
    state: Mutex<DynHeapState>,
}

struct DynHeapState {
    pages: Vec<PageId>,
    len: usize,
}

impl DynHeapFile {
    /// Creates an empty heap of `record_size`-byte records.
    ///
    /// # Panics
    ///
    /// Panics when a record cannot fit on one page.
    pub fn create(pool: Arc<BufferPool>, record_size: usize) -> Self {
        assert!(record_size > 0, "zero-size records are not addressable");
        assert!(
            record_size <= PAGE_SIZE - HEADER,
            "record of {record_size} bytes exceeds page payload {}",
            PAGE_SIZE - HEADER
        );
        let per_page = (PAGE_SIZE - HEADER) / record_size;
        Self {
            pool,
            record_size,
            per_page,
            state: Mutex::new(DynHeapState {
                pages: Vec::new(),
                len: 0,
            }),
        }
    }

    /// Re-attaches a heap whose pages already live on the pool's device —
    /// the persistence path. `pages` must be the page list of the saved
    /// heap, in order, and `len` its record count.
    ///
    /// # Panics
    ///
    /// Panics when `len` needs more pages than provided.
    pub fn reopen(
        pool: Arc<BufferPool>,
        record_size: usize,
        len: usize,
        pages: Vec<PageId>,
    ) -> Self {
        assert!(
            record_size > 0 && record_size <= PAGE_SIZE - HEADER,
            "bad record size"
        );
        let per_page = (PAGE_SIZE - HEADER) / record_size;
        assert!(
            len.div_ceil(per_page) <= pages.len(),
            "{len} records do not fit in {} pages",
            pages.len()
        );
        Self {
            pool,
            record_size,
            per_page,
            state: Mutex::new(DynHeapState { pages, len }),
        }
    }

    /// The page list, in order (needed to reopen a persisted heap).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Records per page.
    pub fn per_page(&self) -> usize {
        self.per_page
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.state.lock().len
    }

    /// True when no records were inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics when `bytes.len() != record_size`.
    pub fn insert(&self, bytes: &[u8]) -> Result<RecordId, PageError> {
        assert_eq!(bytes.len(), self.record_size, "record size mismatch");
        let mut st = self.state.lock();
        let slot_in_page = st.len % self.per_page;
        if slot_in_page == 0 {
            let pid = self.pool.alloc();
            st.pages.push(pid);
        }
        let pid = *st.pages.last().expect("page just ensured");
        let slot = u16::try_from(slot_in_page).expect("slot fits u16");
        st.len += 1;
        drop(st);

        self.pool.with_page_mut(pid, |p| {
            let off = HEADER + slot as usize * self.record_size;
            p.put_bytes(off, bytes);
            let count = p.get_u16(0);
            p.put_u16(0, count.max(slot + 1));
        })?;
        Ok(RecordId { page: pid, slot })
    }

    /// Reads the record at `rid` into a fresh buffer.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>, PageError> {
        self.pool.with_page(rid.page, |p| {
            let count = p.get_u16(0);
            assert!(
                rid.slot < count,
                "slot {} out of bounds (count {count})",
                rid.slot
            );
            let off = HEADER + rid.slot as usize * self.record_size;
            p.get_bytes(off, self.record_size).to_vec()
        })
    }

    /// The record id for the `ordinal`-th inserted record.
    pub fn rid_of(&self, ordinal: usize) -> RecordId {
        let st = self.state.lock();
        assert!(
            ordinal < st.len,
            "ordinal {ordinal} out of bounds (len {})",
            st.len
        );
        RecordId {
            page: st.pages[ordinal / self.per_page],
            slot: (ordinal % self.per_page) as u16,
        }
    }

    /// Visits every record in insertion order; one page access per page.
    /// Stops at the first failed page.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8])) -> Result<(), PageError> {
        let len = self.len();
        self.scan_range(0, len, |_, rid, bytes| f(rid, bytes))
    }

    /// Visits records with ordinals in `[start, end)` in order, passing the
    /// ordinal along; one page access per touched page. Partitioning a scan
    /// into disjoint ranges lets callers parallelise it. Stops at the first
    /// failed page.
    pub fn scan_range(
        &self,
        start: usize,
        end: usize,
        mut f: impl FnMut(usize, RecordId, &[u8]),
    ) -> Result<(), PageError> {
        let (pages, len) = {
            let st = self.state.lock();
            (st.pages.clone(), st.len)
        };
        let end = end.min(len);
        if start >= end {
            return Ok(());
        }
        let first_page = start / self.per_page;
        let last_page = (end - 1) / self.per_page;
        for (pi, &pid) in pages
            .iter()
            .enumerate()
            .take(last_page + 1)
            .skip(first_page)
        {
            self.pool.with_page(pid, |p| {
                let count = p.get_u16(0) as usize;
                for slot in 0..count {
                    let ordinal = pi * self.per_page + slot;
                    if ordinal < start || ordinal >= end {
                        continue;
                    }
                    let off = HEADER + slot * self.record_size;
                    f(
                        ordinal,
                        RecordId {
                            page: pid,
                            slot: slot as u16,
                        },
                        p.get_bytes(off, self.record_size),
                    );
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn heap(record_size: usize) -> (Arc<Disk>, DynHeapFile) {
        let disk = Arc::new(Disk::new());
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 8));
        (disk, DynHeapFile::create(pool, record_size))
    }

    fn record(i: u8, size: usize) -> Vec<u8> {
        (0..size).map(|k| i.wrapping_add(k as u8)).collect()
    }

    #[test]
    fn insert_get_scan_roundtrip() {
        let (_d, h) = heap(100);
        let rids: Vec<RecordId> = (0..250u8)
            .map(|i| h.insert(&record(i, 100)).unwrap())
            .collect();
        assert_eq!(h.len(), 250);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), record(i as u8, 100));
            assert_eq!(h.rid_of(i), *rid);
        }
        let mut seen = 0;
        h.scan(|rid, bytes| {
            assert_eq!(rid, rids[seen]);
            assert_eq!(bytes, record(seen as u8, 100));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 250);
    }

    #[test]
    fn per_page_math() {
        let (_d, h) = heap(1024);
        assert_eq!(h.per_page(), (PAGE_SIZE - 8) / 1024);
        for i in 0..h.per_page() + 1 {
            h.insert(&record(i as u8, 1024)).unwrap();
        }
        assert_eq!(h.page_count(), 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_rejected() {
        let (_d, h) = heap(16);
        let _ = h.insert(&[0u8; 15]);
    }

    #[test]
    #[should_panic(expected = "exceeds page payload")]
    fn oversized_record_rejected() {
        let (_d, _h) = heap(PAGE_SIZE);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod range_proptests {
    use super::*;
    use crate::disk::Disk;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any `[start, end)` range visits exactly the full scan's records
        /// restricted to that range, in order.
        #[test]
        fn scan_range_equals_filtered_scan(
            count in 0usize..120,
            start in 0usize..140,
            end in 0usize..140,
        ) {
            let disk = Arc::new(Disk::new());
            let pool = Arc::new(BufferPool::new(disk, 4));
            let heap = DynHeapFile::create(pool, 48);
            for i in 0..count {
                let rec: Vec<u8> = (0..48).map(|k| (i + k) as u8).collect();
                heap.insert(&rec).unwrap();
            }
            let mut via_range = Vec::new();
            heap.scan_range(start, end, |ordinal, _, bytes| {
                via_range.push((ordinal, bytes.to_vec()));
            }).unwrap();
            let mut via_full = Vec::new();
            let mut ordinal = 0;
            heap.scan(|_, bytes| {
                if ordinal >= start && ordinal < end {
                    via_full.push((ordinal, bytes.to_vec()));
                }
                ordinal += 1;
            }).unwrap();
            prop_assert_eq!(via_range, via_full);
        }
    }
}
