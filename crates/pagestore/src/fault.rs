//! Deterministic fault injection: seeded fault schedules and a faulty
//! page device.
//!
//! A [`FaultPlan`] is a schedule of faults — read errors, write errors,
//! torn writes, transient-then-recovered faults — triggered by access
//! counts or page ranges. [`FaultyDisk`] wraps the in-memory [`Disk`] and
//! applies a plan on every access, implementing the same [`PageDevice`]
//! trait, so the whole stack (buffer pool → heap files → R*-tree →
//! engines) runs unmodified over a failing device.
//!
//! Everything is deterministic: a plan is either built explicitly or
//! generated from a `u64` seed via the in-tree xoshiro PRNG
//! ([`tseries::rng::SeededRng`]), and triggers fire on exact access
//! counts. A failing chaos seed therefore replays bit-for-bit.
//!
//! Torn-write model: the device *silently drops* the write (the old page
//! contents stay) and remembers the page as torn; any later read of a torn
//! page fails with a [`PageErrorKind::Corrupt`](crate::PageErrorKind)
//! error, as a checksum-verifying device would report it. A later
//! *successful* full-page write repairs the tear. Corrupted bytes are thus
//! never observable as data — only as typed errors — which is what lets
//! the chaos harness assert "never a wrong answer".

use crate::disk::{Disk, DiskStats, PageDevice};
use crate::error::PageError;
use crate::page::{Page, PageId};
use crate::sync::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tseries::rng::SeededRng;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The read fails with a persistent I/O error (writes unaffected).
    ReadError,
    /// The write fails with a persistent I/O error; nothing is written.
    WriteError,
    /// The write is silently dropped and the page marked torn; later reads
    /// of the page fail as corrupt until a successful write repairs it.
    TornWrite,
    /// The access fails with a *transient* I/O error; after firing
    /// `recover_after` times the fault is spent and accesses succeed.
    Transient {
        /// How many times the fault fires before recovering.
        recover_after: u32,
    },
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires when the armed device's access counter (reads + writes,
    /// counted from [`FaultyDisk::arm`]) reaches exactly `n` (1-based).
    /// One-shot for persistent kinds; a [`FaultKind::Transient`] keeps
    /// firing on subsequent accesses until its budget is spent.
    OnAccess(u64),
    /// Fires on every access to a page in `[lo, hi]` (inclusive).
    /// Persistent kinds model a damaged region of the device; a
    /// [`FaultKind::Transient`] fires until its budget is spent.
    OnPageRange {
        /// First affected page id.
        lo: u32,
        /// Last affected page id (inclusive).
        hi: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// When it happens.
    pub trigger: Trigger,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

/// Shape parameters for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy)]
pub struct PlanParams {
    /// Access-count horizon the schedule targets — `OnAccess` triggers are
    /// drawn uniformly from `1..=horizon`.
    pub horizon: u64,
    /// Page-id space — `OnPageRange` triggers are drawn from `0..max_page`.
    pub max_page: u32,
    /// Number of fault specs to draw.
    pub faults: usize,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a spec; builder-style.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// A one-shot read error on access `n`.
    pub fn read_error_at(self, n: u64) -> Self {
        self.with(FaultSpec {
            kind: FaultKind::ReadError,
            trigger: Trigger::OnAccess(n),
        })
    }

    /// A one-shot write error on access `n`.
    pub fn write_error_at(self, n: u64) -> Self {
        self.with(FaultSpec {
            kind: FaultKind::WriteError,
            trigger: Trigger::OnAccess(n),
        })
    }

    /// A one-shot torn write on access `n`.
    pub fn torn_write_at(self, n: u64) -> Self {
        self.with(FaultSpec {
            kind: FaultKind::TornWrite,
            trigger: Trigger::OnAccess(n),
        })
    }

    /// A transient fault starting at access `n`, recovering after firing
    /// `recover_after` times.
    pub fn transient_at(self, n: u64, recover_after: u32) -> Self {
        self.with(FaultSpec {
            kind: FaultKind::Transient { recover_after },
            trigger: Trigger::OnAccess(n),
        })
    }

    /// Persistent read errors on every page in `[lo, hi]`.
    pub fn read_error_on_pages(self, lo: u32, hi: u32) -> Self {
        self.with(FaultSpec {
            kind: FaultKind::ReadError,
            trigger: Trigger::OnPageRange { lo, hi },
        })
    }

    /// The scheduled specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Generates a schedule fully determined by `seed` — the chaos
    /// harness's source of "hundreds of fault schedules". Kind mix:
    /// ~40 % read errors, ~20 % write errors, ~20 % torn writes, ~20 %
    /// transient; ~70 % of triggers are access counts, the rest page
    /// ranges.
    pub fn generate(seed: u64, params: &PlanParams) -> Self {
        let mut rng = SeededRng::seed_from_u64(seed);
        let horizon = params.horizon.max(1);
        let max_page = params.max_page.max(1);
        let mut plan = Self::new();
        for _ in 0..params.faults {
            let kind = match rng.random_range(0u32..10) {
                0..=3 => FaultKind::ReadError,
                4 | 5 => FaultKind::WriteError,
                6 | 7 => FaultKind::TornWrite,
                _ => FaultKind::Transient {
                    recover_after: rng.random_range(1u32..=3),
                },
            };
            let trigger = if rng.random_bool(0.7) {
                Trigger::OnAccess(rng.random_range(1u64..=horizon))
            } else {
                let lo = rng.random_range(0u32..max_page);
                let width = rng.random_range(0u32..=(max_page / 8).max(1));
                Trigger::OnPageRange {
                    lo,
                    hi: lo.saturating_add(width),
                }
            };
            plan = plan.with(FaultSpec { kind, trigger });
        }
        plan
    }
}

/// Counts of faults actually injected (not merely scheduled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Reads failed with a persistent error.
    pub read_errors: u64,
    /// Writes failed with a persistent error.
    pub write_errors: u64,
    /// Writes silently torn.
    pub torn_writes: u64,
    /// Accesses failed with a transient error.
    pub transient_errors: u64,
    /// Reads failed because the page was torn.
    pub corrupt_reads: u64,
}

/// Per-spec runtime state: transient budget left, one-shot consumption.
#[derive(Debug, Clone)]
struct SpecState {
    spec: FaultSpec,
    /// Remaining fires for transient faults; `u32::MAX` ⇒ not transient.
    remaining: u32,
    consumed: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    specs: Vec<SpecState>,
    /// Accesses since the plan was armed (1-based at check time).
    accesses: u64,
    /// Pages whose last write was torn; reads fail until rewritten.
    torn: HashSet<PageId>,
}

/// A fault-injecting wrapper around [`Disk`], implementing [`PageDevice`].
///
/// Unarmed (no plan), it behaves exactly like the inner disk. Arm a
/// [`FaultPlan`] with [`arm`](Self::arm) and every subsequent access is
/// checked against the schedule. [`disarm`](Self::disarm) drops whatever
/// remains of the plan; torn pages stay torn until successfully rewritten
/// (or [`heal`](Self::heal)ed), because device damage outlives the fault
/// campaign.
pub struct FaultyDisk {
    inner: Arc<Disk>,
    state: Mutex<FaultState>,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    torn_writes: AtomicU64,
    transient_errors: AtomicU64,
    corrupt_reads: AtomicU64,
}

impl FaultyDisk {
    /// Wraps `inner` with no plan armed.
    pub fn new(inner: Arc<Disk>) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState::default()),
            read_errors: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &Arc<Disk> {
        &self.inner
    }

    /// Arms `plan`, resetting the access counter to zero. Torn marks from
    /// a previous campaign persist (the damage is on the device, not in
    /// the plan).
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        st.specs = plan
            .specs
            .into_iter()
            .map(|spec| SpecState {
                remaining: match spec.kind {
                    FaultKind::Transient { recover_after } => recover_after,
                    _ => u32::MAX,
                },
                spec,
                consumed: false,
            })
            .collect();
        st.accesses = 0;
    }

    /// Drops whatever remains of the armed plan. Torn pages stay torn.
    pub fn disarm(&self) {
        let mut st = self.state.lock();
        st.specs.clear();
        st.accesses = 0;
    }

    /// Repairs every torn page (as a scrubber restoring replicas would).
    pub fn heal(&self) {
        self.state.lock().torn.clear();
    }

    /// Pages currently marked torn.
    pub fn torn_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.state.lock().torn.iter().copied().collect();
        v.sort();
        v
    }

    /// Counts of faults injected so far.
    pub fn injected(&self) -> FaultCounters {
        FaultCounters {
            read_errors: self.read_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
        }
    }

    /// Total faults injected (shorthand for summing [`Self::injected`]).
    pub fn injected_total(&self) -> u64 {
        let c = self.injected();
        c.read_errors + c.write_errors + c.torn_writes + c.transient_errors + c.corrupt_reads
    }

    /// Checks the plan for a fault firing on this access; must be called
    /// with the state locked, once per device access.
    fn firing(st: &mut FaultState, is_read: bool, pid: PageId) -> Option<FaultKind> {
        st.accesses += 1;
        let now = st.accesses;
        for s in st.specs.iter_mut() {
            if s.consumed {
                continue;
            }
            let applies = match s.spec.kind {
                FaultKind::ReadError => is_read,
                FaultKind::WriteError | FaultKind::TornWrite => !is_read,
                FaultKind::Transient { .. } => true,
            };
            if !applies {
                continue;
            }
            let transient = matches!(s.spec.kind, FaultKind::Transient { .. });
            let hit = match s.spec.trigger {
                // One-shot kinds fire at exactly n; transients keep firing
                // from n until their budget runs out.
                Trigger::OnAccess(n) => {
                    if transient {
                        now >= n
                    } else {
                        now == n
                    }
                }
                Trigger::OnPageRange { lo, hi } => (lo..=hi).contains(&pid.0),
            };
            if !hit {
                continue;
            }
            if transient {
                s.remaining -= 1;
                if s.remaining == 0 {
                    s.consumed = true;
                }
            } else if matches!(s.spec.trigger, Trigger::OnAccess(_)) {
                s.consumed = true;
            }
            return Some(s.spec.kind);
        }
        None
    }
}

impl PageDevice for FaultyDisk {
    fn alloc(&self) -> PageId {
        self.inner.alloc()
    }

    fn free(&self, pid: PageId) {
        self.state.lock().torn.remove(&pid);
        self.inner.free(pid)
    }

    fn read(&self, pid: PageId) -> Result<Page, PageError> {
        let mut st = self.state.lock();
        match Self::firing(&mut st, true, pid) {
            Some(FaultKind::ReadError) => {
                drop(st);
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                return Err(PageError::read_io(pid));
            }
            Some(FaultKind::Transient { .. }) => {
                drop(st);
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
                return Err(PageError::read_io(pid).transient());
            }
            _ => {}
        }
        if st.torn.contains(&pid) {
            drop(st);
            self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
            return Err(PageError::corrupt(pid));
        }
        drop(st);
        Ok(self.inner.read(pid))
    }

    fn write(&self, pid: PageId, page: &Page) -> Result<(), PageError> {
        let mut st = self.state.lock();
        match Self::firing(&mut st, false, pid) {
            Some(FaultKind::WriteError) => {
                drop(st);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                return Err(PageError::write_io(pid));
            }
            Some(FaultKind::TornWrite) => {
                // Silently dropped: old contents stay, page marked torn.
                st.torn.insert(pid);
                drop(st);
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(FaultKind::Transient { .. }) => {
                drop(st);
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
                return Err(PageError::write_io(pid).transient());
            }
            _ => {}
        }
        // A successful full-page write repairs an earlier tear.
        st.torn.remove(&pid);
        drop(st);
        self.inner.write(pid, page);
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> (Arc<Disk>, FaultyDisk, PageId) {
        let disk = Arc::new(Disk::new());
        let pid = disk.alloc();
        let mut p = Page::zeroed();
        p.put_u64(0, 99);
        disk.write(pid, &p);
        (Arc::clone(&disk), FaultyDisk::new(disk), pid)
    }

    #[test]
    fn unarmed_is_transparent() {
        let (_d, fd, pid) = device();
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 99);
        let mut p = Page::zeroed();
        p.put_u64(0, 7);
        fd.write(pid, &p).unwrap();
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 7);
        assert_eq!(fd.injected_total(), 0);
    }

    #[test]
    fn read_error_fires_once_on_exact_access() {
        let (_d, fd, pid) = device();
        fd.arm(FaultPlan::new().read_error_at(2));
        assert!(fd.read(pid).is_ok(), "access 1 clean");
        let err = fd.read(pid).unwrap_err();
        assert_eq!(err, PageError::read_io(pid));
        assert!(fd.read(pid).is_ok(), "one-shot: access 3 clean");
        assert_eq!(fd.injected().read_errors, 1);
    }

    #[test]
    fn write_error_leaves_old_contents() {
        let (_d, fd, pid) = device();
        fd.arm(FaultPlan::new().write_error_at(1));
        let mut p = Page::zeroed();
        p.put_u64(0, 1234);
        assert_eq!(fd.write(pid, &p).unwrap_err(), PageError::write_io(pid));
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 99, "old data intact");
    }

    #[test]
    fn torn_write_detected_on_read_and_repaired_by_rewrite() {
        let (_d, fd, pid) = device();
        fd.arm(FaultPlan::new().torn_write_at(1));
        let mut p = Page::zeroed();
        p.put_u64(0, 1234);
        fd.write(pid, &p).unwrap(); // silently torn
        assert_eq!(fd.injected().torn_writes, 1);
        assert_eq!(fd.read(pid).unwrap_err(), PageError::corrupt(pid));
        assert_eq!(fd.torn_pages(), vec![pid]);
        // Rewriting repairs the tear.
        fd.write(pid, &p).unwrap();
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 1234);
        assert!(fd.torn_pages().is_empty());
    }

    #[test]
    fn transient_fault_recovers_after_budget() {
        let (_d, fd, pid) = device();
        fd.arm(FaultPlan::new().transient_at(1, 2));
        let e1 = fd.read(pid).unwrap_err();
        assert!(e1.transient);
        let e2 = fd.read(pid).unwrap_err();
        assert!(e2.transient);
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 99, "recovered");
        assert_eq!(fd.injected().transient_errors, 2);
    }

    #[test]
    fn page_range_faults_are_persistent() {
        let (d, fd, pid) = device();
        let other = d.alloc();
        fd.arm(FaultPlan::new().read_error_on_pages(pid.0, pid.0));
        assert!(fd.read(pid).is_err());
        assert!(fd.read(pid).is_err(), "range faults keep firing");
        assert!(fd.read(other).is_ok(), "outside the range is clean");
    }

    #[test]
    fn disarm_stops_injection_heal_clears_tears() {
        let (_d, fd, pid) = device();
        fd.arm(
            FaultPlan::new()
                .torn_write_at(1)
                .read_error_on_pages(0, 1000),
        );
        let p = Page::zeroed();
        fd.write(pid, &p).unwrap(); // torn
        assert!(fd.read(pid).is_err());
        fd.disarm();
        // Plan gone, but the tear persists...
        assert_eq!(fd.read(pid).unwrap_err(), PageError::corrupt(pid));
        // ...until healed.
        fd.heal();
        assert_eq!(fd.read(pid).unwrap().get_u64(0), 99);
    }

    #[test]
    fn generated_plans_are_deterministic_and_vary_by_seed() {
        let params = PlanParams {
            horizon: 500,
            max_page: 64,
            faults: 8,
        };
        let a = FaultPlan::generate(42, &params);
        let b = FaultPlan::generate(42, &params);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.specs().len(), 8);
        let c = FaultPlan::generate(43, &params);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn generated_plans_respect_bounds() {
        let params = PlanParams {
            horizon: 100,
            max_page: 32,
            faults: 64,
        };
        for seed in 0..20u64 {
            for spec in FaultPlan::generate(seed, &params).specs() {
                match spec.trigger {
                    Trigger::OnAccess(n) => assert!((1..=100).contains(&n)),
                    Trigger::OnPageRange { lo, hi } => {
                        assert!(lo < 32);
                        assert!(hi >= lo);
                    }
                }
                if let FaultKind::Transient { recover_after } = spec.kind {
                    assert!((1..=3).contains(&recover_after));
                }
            }
        }
    }
}
