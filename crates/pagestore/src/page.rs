//! Fixed-size pages and their byte-level codec.
//!
//! Page size is 8 KiB — the R*-tree node size used in Beckmann-era setups;
//! with a 6-dimensional feature space this yields a branching factor in the
//! tens, matching the paper's index geometry.

use std::fmt;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on a [`crate::Disk`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel meaning "no page".
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True unless this is the [`INVALID`](Self::INVALID) sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "P{}", self.0)
        } else {
            write!(f, "P<invalid>")
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A heap-allocated page buffer with bounds-checked little-endian accessors.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl Page {
    /// A page of all zeroes.
    pub fn zeroed() -> Self {
        Self {
            data: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("sized"),
        }
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Reads a `u16` at `off`.
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().expect("in bounds"))
    }

    /// Writes a `u16` at `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().expect("in bounds"))
    }

    /// Writes a `u32` at `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().expect("in bounds"))
    }

    /// Writes a `u64` at `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `f64` at `off`.
    pub fn get_f64(&self, off: usize) -> f64 {
        f64::from_bits(self.get_u64(off))
    }

    /// Writes an `f64` at `off`.
    pub fn put_f64(&mut self, off: usize, v: f64) {
        self.put_u64(off, v.to_bits());
    }

    /// Reads a [`PageId`] at `off`.
    pub fn get_page_id(&self, off: usize) -> PageId {
        PageId(self.get_u32(off))
    }

    /// Writes a [`PageId`] at `off`.
    pub fn put_page_id(&mut self, off: usize, v: PageId) {
        self.put_u32(off, v.0);
    }

    /// Copies a byte slice into the page at `off`.
    pub fn put_bytes(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrows `len` bytes at `off`.
    pub fn get_bytes(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.data.iter().filter(|b| **b != 0).count();
        write!(f, "Page({nonzero}/{PAGE_SIZE} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips() {
        let mut p = Page::zeroed();
        p.put_u16(0, 0xBEEF);
        p.put_u32(2, 0xDEAD_BEEF);
        p.put_u64(6, u64::MAX - 7);
        p.put_f64(14, -123.456e78);
        p.put_page_id(22, PageId(99));
        assert_eq!(p.get_u16(0), 0xBEEF);
        assert_eq!(p.get_u32(2), 0xDEAD_BEEF);
        assert_eq!(p.get_u64(6), u64::MAX - 7);
        assert_eq!(p.get_f64(14), -123.456e78);
        assert_eq!(p.get_page_id(22), PageId(99));
    }

    #[test]
    fn nan_survives_bit_roundtrip() {
        let mut p = Page::zeroed();
        p.put_f64(0, f64::NAN);
        assert!(p.get_f64(0).is_nan());
        p.put_f64(0, f64::NEG_INFINITY);
        assert_eq!(p.get_f64(0), f64::NEG_INFINITY);
    }

    #[test]
    fn bytes_roundtrip_at_tail() {
        let mut p = Page::zeroed();
        let payload = [1u8, 2, 3, 4, 5];
        p.put_bytes(PAGE_SIZE - 5, &payload);
        assert_eq!(p.get_bytes(PAGE_SIZE - 5, 5), payload);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut p = Page::zeroed();
        p.put_u64(PAGE_SIZE - 4, 1);
    }

    #[test]
    fn invalid_page_id() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(format!("{}", PageId(7)), "P7");
        assert_eq!(format!("{}", PageId::INVALID), "P<invalid>");
    }
}
