//! An in-memory simulated disk with access counters.
//!
//! The experiments report disk accesses the way the paper does: every page
//! read from the device increments a counter. We simulate the device in RAM
//! (see DESIGN.md §2.3 — the 1999 testbed's spindle is not the point; the
//! *counts* drive the cost model of Eq. 18–20, which the paper itself uses
//! to normalise Figures 8–9).

use crate::error::PageError;
use crate::page::{Page, PageId};
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of physical page traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the device.
    pub reads: u64,
    /// Pages written to the device.
    pub writes: u64,
    /// Pages currently allocated.
    pub allocated: u64,
}

/// A page device the buffer pool can sit on: the plain in-memory [`Disk`]
/// or a fault-injecting wrapper ([`crate::FaultyDisk`]).
///
/// `read`/`write` are fallible — a device is allowed to fail an access —
/// while `alloc`/`free` are not (allocation is a metadata operation in this
/// model, and the fault layer targets page I/O). Accessing a page that was
/// never allocated is a caller bug on every device and still panics.
pub trait PageDevice: Send + Sync {
    /// Allocates a zeroed page.
    fn alloc(&self) -> PageId;
    /// Returns a page to the free list.
    fn free(&self, pid: PageId);
    /// Reads a page, counting one disk access.
    fn read(&self, pid: PageId) -> Result<Page, PageError>;
    /// Writes a page, counting one disk access.
    fn write(&self, pid: PageId, page: &Page) -> Result<(), PageError>;
    /// Snapshot of the access counters.
    fn stats(&self) -> DiskStats;
    /// Zeroes the access counters.
    fn reset_stats(&self);
}

impl PageDevice for Disk {
    fn alloc(&self) -> PageId {
        Disk::alloc(self)
    }

    fn free(&self, pid: PageId) {
        Disk::free(self, pid)
    }

    fn read(&self, pid: PageId) -> Result<Page, PageError> {
        Ok(Disk::read(self, pid))
    }

    fn write(&self, pid: PageId, page: &Page) -> Result<(), PageError> {
        Disk::write(self, pid, page);
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        Disk::stats(self)
    }

    fn reset_stats(&self) {
        Disk::reset_stats(self)
    }
}

/// A thread-safe in-memory page device with a free list.
#[derive(Default)]
pub struct Disk {
    inner: Mutex<DiskInner>,
    reads: AtomicU64,
    writes: AtomicU64,
}

#[derive(Default)]
struct DiskInner {
    pages: Vec<Option<Page>>,
    free: Vec<PageId>,
}

impl Disk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zeroed page and returns its id.
    pub fn alloc(&self) -> PageId {
        let mut inner = self.inner.lock();
        if let Some(pid) = inner.free.pop() {
            inner.pages[pid.0 as usize] = Some(Page::zeroed());
            pid
        } else {
            let pid = PageId(u32::try_from(inner.pages.len()).expect("disk full"));
            assert!(pid.is_valid(), "page id space exhausted");
            inner.pages.push(Some(Page::zeroed()));
            pid
        }
    }

    /// Returns a page to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated or was already freed — a
    /// double free is a bug in the caller, not a recoverable condition.
    pub fn free(&self, pid: PageId) {
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(pid.0 as usize)
            .expect("free of unallocated page");
        assert!(slot.take().is_some(), "double free of {pid}");
        inner.free.push(pid);
    }

    /// Reads a page, counting one disk access.
    pub fn read(&self, pid: PageId) -> Page {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.lock();
        inner
            .pages
            .get(pid.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("read of unallocated {pid}"))
            .clone()
    }

    /// Writes a page, counting one disk access.
    pub fn write(&self, pid: PageId, page: &Page) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(pid.0 as usize)
            .expect("write to unallocated page");
        assert!(slot.is_some(), "write to freed {pid}");
        *slot = Some(page.clone());
    }

    /// Runs `f` against a page without copying it out, still counting one
    /// read access. Useful on hot paths (index node scans).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.lock();
        let page = inner
            .pages
            .get(pid.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("read of unallocated {pid}"));
        f(page)
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> DiskStats {
        let inner = self.inner.lock();
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocated: (inner.pages.len() - inner.free.len()) as u64,
        }
    }

    /// Zeroes the read/write counters (page contents are untouched).
    /// Experiments call this between queries so each query's accesses are
    /// measured cold.
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Copies the device state out (persistence support).
    pub(crate) fn snapshot(&self) -> DiskSnapshot {
        let inner = self.inner.lock();
        DiskSnapshot {
            pages: inner.pages.clone(),
            free: inner.free.clone(),
        }
    }

    /// Rebuilds a device from a snapshot (persistence support).
    pub(crate) fn from_snapshot(pages: Vec<Option<Page>>, free: Vec<PageId>) -> Self {
        Self {
            inner: Mutex::new(DiskInner { pages, free }),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }
}

/// An owned copy of the device state.
pub(crate) struct DiskSnapshot {
    pub(crate) pages: Vec<Option<Page>>,
    pub(crate) free: Vec<PageId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let d = Disk::new();
        let a = d.alloc();
        let b = d.alloc();
        assert_ne!(a, b);

        let mut p = Page::zeroed();
        p.put_u64(0, 42);
        d.write(a, &p);
        assert_eq!(d.read(a).get_u64(0), 42);
        assert_eq!(d.read(b).get_u64(0), 0);
    }

    #[test]
    fn counters_track_traffic() {
        let d = Disk::new();
        let a = d.alloc();
        let p = Page::zeroed();
        d.write(a, &p);
        d.read(a);
        d.read(a);
        d.with_page(a, |_| ());
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 3);
        assert_eq!(s.allocated, 1);
        d.reset_stats();
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (0, 0));
        assert_eq!(s.allocated, 1);
    }

    #[test]
    fn free_list_reuses_ids() {
        let d = Disk::new();
        let a = d.alloc();
        let _b = d.alloc();
        d.free(a);
        let c = d.alloc();
        assert_eq!(a, c, "freed id should be recycled");
        // Reused page must come back zeroed.
        assert_eq!(d.read(c).get_u64(0), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let d = Disk::new();
        let a = d.alloc();
        d.free(a);
        d.free(a);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_of_freed_page_panics() {
        let d = Disk::new();
        let a = d.alloc();
        d.free(a);
        let _ = d.read(a);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        use std::sync::Arc;
        let d = Arc::new(Disk::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| d.alloc()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<PageId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400, "ids must be unique across threads");
    }
}
